//! Declarative fleet sweeps: shards × replicas × autoscaler policy, executed
//! as deterministic simulations over shared per-model cost profiles.
//!
//! [`FleetGrid`] declares the cartesian product once, [`FleetSession`]
//! expands it and runs every simulation as one flat rayon job pool (each
//! simulation is internally sequential on the virtual clock, so the fan-out
//! cannot perturb results), and [`FleetResultSet`] collects one
//! [`FleetRecord`] per scenario in expansion order with JSON-lines
//! serialization plus the [pareto](FleetResultSet::pareto) view over SLO
//! attainment vs joules/sample — the capacity-planning deliverable.
//!
//! A session profiles each distinct (workload, precision, grid) point exactly
//! once: the per-layer cost profile a [`FunctionalBackend`] measures is
//! memoized and re-cut into stages for every shard count that asks for it.

use super::report::FleetReport;
use super::sim::{simulate_fleet, FleetStageModel};
use super::{AutoscalePolicy, FleetConfig};
use crate::config::{BatchingPolicy, RoutePolicy};
use crate::error::{Result, ServeError};
use crate::trace::TraceSpec;
use accel::ArchConfig;
use apc::{CompileCache, CompilerOptions, TileGrid};
use camdnn::experiment::Workload;
use camdnn::FunctionalBackend;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// One fleet evaluation point: a workload served by a pipelined fleet under
/// one configuration against one trace.
#[derive(Clone)]
pub struct FleetScenario {
    /// Display label (unique within one grid; the lookup key of the result
    /// set).
    pub label: String,
    /// The served model.
    pub workload: Workload,
    /// The fleet configuration (shards, replicas, autoscaler, power).
    pub config: FleetConfig,
    /// The load trace to replay.
    pub trace: TraceSpec,
    /// The tile grid each replica's layers are partitioned over.
    pub tile_grid: TileGrid,
    /// Activation precision of the served model.
    pub act_bits: u8,
    /// Accelerator configuration the cost profile is measured on.
    pub arch: ArchConfig,
    /// Template for the remaining compiler knobs.
    pub compiler_template: CompilerOptions,
}

impl std::fmt::Debug for FleetScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScenario")
            .field("label", &self.label)
            .field("config", &self.config)
            .field("trace", &self.trace)
            .finish()
    }
}

impl FleetScenario {
    /// The effective compiler options: the template at the scenario's
    /// activation precision and the architecture's geometry.
    pub fn compiler_options(&self) -> CompilerOptions {
        CompilerOptions {
            act_bits: self.act_bits,
            geometry: self.arch.geometry,
            ..self.compiler_template
        }
    }

    /// The memoization key of the scenario's cost profile: everything the
    /// profile depends on, nothing the fleet knobs change.
    fn profile_key(&self) -> String {
        format!(
            "{}|{}|{}",
            self.workload.label,
            self.act_bits,
            self.tile_grid.label()
        )
    }
}

/// Cartesian sweep over fleet axes: workloads × traffic (traces) × shard
/// counts × replica counts × autoscaler policies.
///
/// Unset axes default to a single point: one Poisson trace of 256 requests
/// at 2000 req/s, two shards, one replica, no autoscaling, the default
/// batching window and architecture, 4-bit activations on a 1×1 tile grid.
#[derive(Debug, Clone)]
pub struct FleetGrid {
    workloads: Vec<Workload>,
    traffic: Vec<TraceSpec>,
    shards: Vec<usize>,
    replicas: Vec<usize>,
    autoscalers: Vec<AutoscalePolicy>,
    batching: BatchingPolicy,
    routing: RoutePolicy,
    queue_capacity: usize,
    stage_queue_capacity: usize,
    slo_ns: u64,
    idle_tile_uw: f64,
    tile_grid: TileGrid,
    act_bits: u8,
    arch: ArchConfig,
    compiler_template: CompilerOptions,
}

impl Default for FleetGrid {
    fn default() -> Self {
        let template = CompilerOptions::default();
        let config = FleetConfig::default();
        FleetGrid {
            workloads: Vec::new(),
            traffic: vec![TraceSpec::poisson(2_000.0, 256, 0)],
            shards: vec![config.shards],
            replicas: vec![config.replicas],
            autoscalers: vec![AutoscalePolicy::Fixed],
            batching: config.batching,
            routing: config.routing,
            queue_capacity: config.queue_capacity,
            stage_queue_capacity: config.stage_queue_capacity,
            slo_ns: config.slo_ns,
            idle_tile_uw: config.idle_tile_uw,
            tile_grid: TileGrid::new(1, 1),
            act_bits: template.act_bits,
            arch: ArchConfig::default(),
            compiler_template: template,
        }
    }
}

impl FleetGrid {
    /// Creates an empty grid (no workloads yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the workload axis.
    #[must_use]
    pub fn workloads<W: Into<Workload>>(mut self, workloads: impl IntoIterator<Item = W>) -> Self {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one workload.
    #[must_use]
    pub fn workload(mut self, workload: impl Into<Workload>) -> Self {
        self.workloads.push(workload.into());
        self
    }

    /// Replaces the traffic axis (each point is one trace spec: process,
    /// request count, seed).
    #[must_use]
    pub fn traffic(mut self, traffic: impl IntoIterator<Item = TraceSpec>) -> Self {
        self.traffic = traffic.into_iter().collect();
        self
    }

    /// Replaces the shard-count axis (pipeline stages per replica).
    #[must_use]
    pub fn shards(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.shards = shards.into_iter().collect();
        self
    }

    /// Replaces the initial-replica-count axis.
    #[must_use]
    pub fn replicas(mut self, replicas: impl IntoIterator<Item = usize>) -> Self {
        self.replicas = replicas.into_iter().collect();
        self
    }

    /// Replaces the autoscaler-policy axis.
    #[must_use]
    pub fn autoscalers(mut self, autoscalers: impl IntoIterator<Item = AutoscalePolicy>) -> Self {
        self.autoscalers = autoscalers.into_iter().collect();
        self
    }

    /// Sets the stage-0 batching window applied to every scenario.
    #[must_use]
    pub fn batching(mut self, batching: BatchingPolicy) -> Self {
        self.batching = batching;
        self
    }

    /// Sets the routing policy applied to every scenario.
    #[must_use]
    pub fn routing(mut self, routing: RoutePolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the per-replica admission queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the inter-stage buffer depth (batches) applied to every scenario.
    #[must_use]
    pub fn stage_queue_capacity(mut self, capacity: usize) -> Self {
        self.stage_queue_capacity = capacity;
        self
    }

    /// Sets the latency SLO applied to every scenario, in milliseconds
    /// (rounded to whole nanoseconds via [`crate::config::ms_to_ns`]).
    #[must_use]
    pub fn slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ns = crate::config::ms_to_ns(slo_ms);
        self
    }

    /// Sets the static per-tile power, in microwatts.
    #[must_use]
    pub fn idle_tile_uw(mut self, idle_tile_uw: f64) -> Self {
        self.idle_tile_uw = idle_tile_uw;
        self
    }

    /// Sets the tile grid each replica's layers are partitioned over.
    #[must_use]
    pub fn tile_grid(mut self, grid: TileGrid) -> Self {
        self.tile_grid = grid;
        self
    }

    /// Sets the activation precision of the served models.
    #[must_use]
    pub fn act_bits(mut self, act_bits: u8) -> Self {
        self.act_bits = act_bits;
        self
    }

    /// Sets the accelerator configuration the cost profiles are measured on.
    #[must_use]
    pub fn arch(mut self, arch: ArchConfig) -> Self {
        self.arch = arch;
        self
    }

    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.traffic.len()
            * self.shards.len()
            * self.replicas.len()
            * self.autoscalers.len()
    }

    /// Whether the grid expands to no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product, workloads outermost, then traffic,
    /// shards, replicas and autoscalers. Labels are
    /// `"<workload> <process>x<requests> s<shards> r<replicas> <policy>"`.
    pub fn scenarios(&self) -> Vec<FleetScenario> {
        let mut scenarios = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for &trace in &self.traffic {
                for &shards in &self.shards {
                    for &replicas in &self.replicas {
                        for &autoscaler in &self.autoscalers {
                            let label = format!(
                                "{} {}x{} s{} r{} {}",
                                workload.label,
                                trace.process.label(),
                                trace.requests,
                                shards,
                                replicas,
                                autoscaler.label()
                            );
                            scenarios.push(FleetScenario {
                                label,
                                workload: workload.clone(),
                                config: FleetConfig {
                                    shards,
                                    replicas,
                                    batching: self.batching,
                                    queue_capacity: self.queue_capacity,
                                    stage_queue_capacity: self.stage_queue_capacity,
                                    routing: self.routing,
                                    slo_ns: self.slo_ns,
                                    autoscaler,
                                    idle_tile_uw: self.idle_tile_uw,
                                },
                                trace,
                                tile_grid: self.tile_grid,
                                act_bits: self.act_bits,
                                arch: self.arch,
                                compiler_template: self.compiler_template,
                            });
                        }
                    }
                }
            }
        }
        scenarios
    }
}

/// One row of a [`FleetResultSet`]: the outcome of one fleet scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Scenario label (see [`FleetGrid::scenarios`]).
    pub scenario: String,
    /// Workload label.
    pub workload: String,
    /// Model name.
    pub network: String,
    /// The fleet report (config echo, latency, scaling trajectory, energy).
    pub report: FleetReport,
}

/// Deterministic, expansion-ordered fleet results with JSON-lines
/// serialization (schema: `BENCH_schema.md`) and the pareto view.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetResultSet {
    /// The records, in grid-expansion order.
    pub records: Vec<FleetRecord>,
}

impl FleetResultSet {
    /// Serializes the records as JSON lines (one record object per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("record serialization cannot fail"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSON-lines document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a serde error when a line is not a valid record.
    pub fn from_json(text: &str) -> std::result::Result<Self, serde::Error> {
        let records = text
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(serde_json::from_str)
            .collect::<std::result::Result<Vec<FleetRecord>, serde::Error>>()?;
        Ok(FleetResultSet { records })
    }

    /// Writes the records as JSON lines to `path`, proving the round-trip
    /// first (so a file that exists is always consumable).
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] when the round-trip check fails or the
    /// file cannot be written.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let text = self.to_json();
        let lossless = FleetResultSet::from_json(&text)
            .map(|parsed| &parsed == self)
            .unwrap_or(false);
        if !lossless {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "fleet result set did not survive a JSON round-trip",
            ));
        }
        std::fs::write(path, text)
    }

    /// The record of the scenario labelled `scenario`, if any.
    pub fn get(&self, scenario: &str) -> Option<&FleetRecord> {
        self.records.iter().find(|r| r.scenario == scenario)
    }

    /// The pareto-efficient records over (SLO attainment ↑, joules/sample ↓):
    /// a record survives unless another record attains at least as much SLO
    /// for at most as many joules with at least one strict improvement.
    /// Survivors keep their expansion order, so the frontier is
    /// deterministic.
    pub fn pareto(&self) -> Vec<&FleetRecord> {
        self.records
            .iter()
            .filter(|candidate| {
                !self.records.iter().any(|other| {
                    let a = &other.report;
                    let b = &candidate.report;
                    a.slo_attainment >= b.slo_attainment
                        && a.joules_per_sample <= b.joules_per_sample
                        && (a.slo_attainment > b.slo_attainment
                            || a.joules_per_sample < b.joules_per_sample)
                })
            })
            .collect()
    }

    /// Renders the headline fleet metrics as a fixed-width table; pareto
    /// frontier rows are marked with `*`.
    pub fn to_table(&self) -> String {
        let pareto: HashSet<&str> = self.pareto().iter().map(|r| r.scenario.as_str()).collect();
        let mut out = format!(
            "{:<52} {:>9} {:>10} {:>10} {:>7} {:>9} {:>5} {:>12}\n",
            "scenario", "served", "smp/s", "p99[ms]", "slo[%]", "peak rep", "tiles", "uJ/sample"
        );
        for record in &self.records {
            let report = &record.report;
            out.push_str(&format!(
                "{:<50} {} {:>4}/{:<4} {:>10.1} {:>10.3} {:>7.1} {:>9} {:>5} {:>12.4}\n",
                record.scenario,
                if pareto.contains(record.scenario.as_str()) {
                    '*'
                } else {
                    ' '
                },
                report.completed,
                report.offered,
                report.samples_per_s,
                report.latency.p99_ms(),
                report.slo_attainment * 100.0,
                report.peak_replicas,
                report.peak_tiles,
                report.joules_per_sample * 1e6,
            ));
        }
        out
    }
}

/// Executes fleet sweeps with a shared compile cache and memoized per-model
/// cost profiles.
#[derive(Debug, Default)]
pub struct FleetSession {
    cache: Arc<CompileCache>,
    profiles: Mutex<HashMap<String, Arc<camdnn::ModelProfile>>>,
}

impl FleetSession {
    /// Creates a session with an empty compile cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The session's shared compile cache.
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.cache
    }

    /// The scenario's per-layer cost profile, measured once per
    /// (workload, precision, tile grid) and memoized across the sweep.
    fn profile(&self, scenario: &FleetScenario) -> Result<Arc<camdnn::ModelProfile>> {
        let key = scenario.profile_key();
        if let Some(profile) = self
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .get(&key)
        {
            return Ok(Arc::clone(profile));
        }
        let backend = FunctionalBackend::new(scenario.arch, scenario.compiler_options())
            .with_tile_grid(scenario.tile_grid);
        let profile = Arc::new(
            backend
                .profile(&scenario.workload.model, &self.cache)
                .map_err(ServeError::Backend)?,
        );
        // Two threads may race to profile the same key; both produce the
        // same deterministic profile, so either insert is fine.
        self.profiles
            .lock()
            .expect("profile cache poisoned")
            .insert(key, Arc::clone(&profile));
        Ok(profile)
    }

    /// Runs one scenario: profiles the model, cuts the profile into the
    /// scenario's shard count, generates the trace, and simulates the fleet
    /// on the virtual clock.
    ///
    /// # Errors
    ///
    /// Propagates profile, stage-planning, trace-generation and
    /// configuration errors.
    pub fn run_scenario(&self, scenario: &FleetScenario) -> Result<FleetReport> {
        let profile = self.profile(scenario)?;
        let model = FleetStageModel::from_profile(&profile, scenario.config.shards)?;
        let trace = scenario.trace.generate()?;
        simulate_fleet(&model, &scenario.config, &scenario.trace, &trace)
    }

    /// Expands `grid` and runs every scenario as one flat parallel job pool,
    /// collecting records in expansion order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when two scenarios share a
    /// label; otherwise all simulations run to completion and the error of
    /// the lowest-index failing scenario is reported.
    pub fn run(&self, grid: &FleetGrid) -> Result<FleetResultSet> {
        let scenarios = grid.scenarios();
        let mut labels = HashSet::new();
        for scenario in &scenarios {
            if !labels.insert(scenario.label.as_str()) {
                return Err(ServeError::InvalidConfig {
                    reason: format!(
                        "duplicate fleet scenario label `{}` — give colliding workloads distinct labels",
                        scenario.label
                    ),
                });
            }
        }
        let outcomes: Vec<Result<FleetRecord>> = scenarios
            .par_iter()
            .map(|scenario| {
                let report = self.run_scenario(scenario)?;
                Ok(FleetRecord {
                    scenario: scenario.label.clone(),
                    workload: scenario.workload.label.clone(),
                    network: scenario.workload.model.name().to_string(),
                    report,
                })
            })
            .collect();
        let mut records = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            records.push(outcome?);
        }
        Ok(FleetResultSet { records })
    }
}
