//! The fleet event loop: pipelined replicas and autoscaling on the virtual
//! clock.
//!
//! [`simulate_fleet`] replays a [`Trace`] against a [`FleetStageModel`] — a
//! pure cost model distilled from a profiled execution, so million-request
//! traces replay without touching payload data. The event loop is sequential
//! with a total order over `(time, kind, replica, stage)` ties; kinds rank
//! completions before arrivals before dispatches before scale decisions, so
//! the whole trajectory (batch compositions, scaling events, energy
//! integrals) is deterministic at any `RAYON_NUM_THREADS` and on any host.

use super::report::{FleetReport, ScaleEvent};
use super::{AutoscalePolicy, FleetConfig};
use crate::config::RoutePolicy;
use crate::error::{Result, ServeError};
use crate::report::{LatencySummary, PhaseBreakdown, PhaseSample};
use crate::trace::{Trace, TraceSpec};
use camdnn::ModelProfile;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The modeled cost of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Service latency of one batch on the stage, in nanoseconds. Packed
    /// batches are batch-invariant in latency (one physical sweep serves the
    /// whole batch), so this is a constant per dispatch.
    pub latency_ns: u64,
    /// Compute energy per sample crossing the stage, in microjoules.
    pub energy_uj_per_sample: f64,
    /// Tiles the stage occupies on every replica that instantiates it.
    pub tiles: usize,
}

/// A model cut into pipeline stages, each priced by the profiled per-layer
/// costs — the execution model every fleet replica instantiates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStageModel {
    /// The profiled model's name.
    pub model: String,
    /// The stage costs, in pipeline order.
    pub stages: Vec<StageCost>,
}

impl FleetStageModel {
    /// Cuts `profile` into `shards` pipeline stages with
    /// [`apc::plan_stages`], minimising the bottleneck stage latency, and
    /// prices each stage by its member layers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] when the stage planner rejects the cut
    /// (zero shards, more shards than layers, an empty profile).
    pub fn from_profile(profile: &ModelProfile, shards: usize) -> Result<Self> {
        let layers: Vec<apc::StageLayer> = profile
            .layers
            .iter()
            .map(|l| apc::StageLayer {
                weight: crate::config::ms_to_ns(l.latency_ns / 1e6),
                tiles: l.tiles_used.max(1),
                traffic_bits: l.traffic_bits,
            })
            .collect();
        let shapes = apc::plan_stages(&layers, shards).map_err(ServeError::Backend)?;
        let stages = shapes
            .iter()
            .map(|shape| {
                let members = &profile.layers[shape.layers()];
                StageCost {
                    latency_ns: crate::config::ms_to_ns(
                        members.iter().map(|l| l.latency_ns).sum::<f64>() / 1e6,
                    ),
                    energy_uj_per_sample: members.iter().map(|l| l.energy_uj).sum(),
                    tiles: shape.tiles,
                }
            })
            .collect();
        Ok(FleetStageModel {
            model: profile.model.clone(),
            stages,
        })
    }

    /// Tiles one replica holds: the sum of its stages' footprints (stages
    /// run concurrently, so tiles are not shared between them).
    pub fn tiles_per_replica(&self) -> u64 {
        self.stages.iter().map(|s| s.tiles as u64).sum()
    }

    /// The pipeline's steady-state interval: the slowest stage's latency.
    pub fn bottleneck_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.latency_ns).max().unwrap_or(0)
    }

    /// Single-sample pipeline fill latency: the sum of the stage latencies.
    pub fn fill_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.latency_ns).sum()
    }
}

/// One closed stage-0 batch traversing the pipeline.
#[derive(Debug, Clone)]
struct FleetBatch {
    /// Member requests (trace indices), in queue order.
    requests: Vec<usize>,
    /// When the batching policy decided this batch (the filling member's
    /// arrival when size-triggered, the oldest member's deadline otherwise),
    /// never after `dispatch_ns`.
    planned_close_ns: u64,
    /// Stage-0 dispatch time, in nanoseconds.
    dispatch_ns: u64,
}

/// One pipeline stage's runtime state on one replica.
#[derive(Debug, Clone, Default)]
struct StageSlot {
    /// Batches waiting to enter the stage (bounded by
    /// `stage_queue_capacity`).
    queue: VecDeque<FleetBatch>,
    /// The batch currently executing, with its completion time.
    executing: Option<FleetBatch>,
    busy_until: Option<u64>,
    /// A finished batch blocked by a full downstream queue (head-of-line
    /// blocking: the stage cannot start new work until this moves on).
    done: Option<FleetBatch>,
}

impl StageSlot {
    fn is_free(&self) -> bool {
        self.executing.is_none() && self.done.is_none()
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.is_free()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    /// Provisioned, not yet routable.
    Warming { ready_ns: u64 },
    /// Serving traffic.
    Active,
    /// No longer routable; finishing queued work before retiring.
    Draining,
    /// Out of the fleet; accrues no further tile-time.
    Retired,
}

#[derive(Debug, Clone)]
struct FleetReplica {
    state: ReplicaState,
    /// Requests waiting before stage 0 (trace indices), oldest first.
    requests: VecDeque<usize>,
    stages: Vec<StageSlot>,
    /// Provisioning time (0 for the initial fleet), for the tile-time
    /// integral.
    started_ns: u64,
    retired_ns: Option<u64>,
    batches: u64,
}

impl FleetReplica {
    fn new(stages: usize, state: ReplicaState, started_ns: u64) -> Self {
        FleetReplica {
            state,
            requests: VecDeque::new(),
            stages: vec![StageSlot::default(); stages],
            started_ns,
            retired_ns: None,
            batches: 0,
        }
    }

    fn is_routable(&self) -> bool {
        self.state == ReplicaState::Active
    }

    fn in_fleet(&self) -> bool {
        self.state != ReplicaState::Retired
    }

    fn pipeline_empty(&self) -> bool {
        self.requests.is_empty() && self.stages.iter().all(StageSlot::is_empty)
    }

    /// Samples waiting plus in flight (the least-loaded score).
    fn load(&self) -> usize {
        self.requests.len()
            + self
                .stages
                .iter()
                .map(|s| {
                    s.queue.iter().map(|b| b.requests.len()).sum::<usize>()
                        + s.executing.as_ref().map_or(0, |b| b.requests.len())
                        + s.done.as_ref().map_or(0, |b| b.requests.len())
                })
                .sum::<usize>()
    }
}

/// The four event kinds, in tie-break priority order: at equal virtual times
/// stages free first, then arrivals join queues, then batches close, then
/// the autoscaler decides (seeing the settled state of the instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Completion,
    Arrival,
    Dispatch,
    Scale,
}

/// Starts queued work and moves blocked batches forward on one replica until
/// nothing can move: stages are scanned last to first so a freed stage pulls
/// from its input queue, which in turn unblocks its upstream neighbour.
fn settle(
    replica: &mut FleetReplica,
    now: u64,
    model: &FleetStageModel,
    stage_queue_capacity: usize,
    compute_uj: &mut f64,
) {
    let stages = model.stages.len();
    loop {
        let mut moved = false;
        for s in (0..stages).rev() {
            if replica.stages[s].done.is_some()
                && s + 1 < stages
                && replica.stages[s + 1].queue.len() < stage_queue_capacity
            {
                let batch = replica.stages[s].done.take().expect("checked above");
                replica.stages[s + 1].queue.push_back(batch);
                moved = true;
            }
            if replica.stages[s].is_free() {
                if let Some(batch) = replica.stages[s].queue.pop_front() {
                    *compute_uj +=
                        model.stages[s].energy_uj_per_sample * batch.requests.len() as f64;
                    replica.stages[s].busy_until =
                        Some(now.saturating_add(model.stages[s].latency_ns));
                    replica.stages[s].executing = Some(batch);
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

/// Replays `trace` through a fleet of pipelined replicas under `config`,
/// producing the aggregate [`FleetReport`].
///
/// `spec` is echoed into the report so consumers can reproduce the run; it
/// must be the spec `trace` was generated from. An empty trace is legal and
/// yields a report of zeros (default latency summaries).
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] when the configuration fails
/// [`FleetConfig::validate`] or the stage model has a different stage count
/// than `config.shards`.
pub fn simulate_fleet(
    model: &FleetStageModel,
    config: &FleetConfig,
    spec: &TraceSpec,
    trace: &Trace,
) -> Result<FleetReport> {
    config.validate()?;
    if model.stages.len() != config.shards {
        return Err(ServeError::InvalidConfig {
            reason: format!(
                "stage model has {} stages but the fleet config asks for {} shards",
                model.stages.len(),
                config.shards
            ),
        });
    }
    let stages = config.shards;
    let last_stage = stages - 1;

    let mut replicas: Vec<FleetReplica> = (0..config.replicas)
        .map(|_| FleetReplica::new(stages, ReplicaState::Active, 0))
        .collect();
    let mut rr_cursor = 0usize;
    let mut next_arrival = 0usize;
    let mut now = 0u64;
    let mut next_check_ns = match config.autoscaler {
        AutoscalePolicy::Fixed => u64::MAX,
        AutoscalePolicy::QueueDepth {
            check_interval_ns, ..
        }
        | AutoscalePolicy::SloHeadroom {
            check_interval_ns, ..
        } => check_interval_ns,
    };

    // (request, planned close, dispatch, completion)
    let mut completions: Vec<(usize, u64, u64, u64)> = Vec::new();
    let mut rejected = 0u64;
    let mut batches_total = 0u64;
    let mut batched_samples = 0u64;
    let mut max_queue_depth = 0u64;
    let mut compute_uj = 0.0f64;
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut peak_replicas = config.replicas;
    let mut window_max_wait_ns = 0u64;

    loop {
        let completion = replicas
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                r.stages
                    .iter()
                    .enumerate()
                    .filter_map(move |(s, slot)| slot.busy_until.map(|t| (t, i, s)))
            })
            .map(|(t, i, s)| (t, EventKind::Completion, i, s))
            .min();
        let arrival = trace
            .arrivals_ns
            .get(next_arrival)
            .map(|&t| (t.max(now), EventKind::Arrival, next_arrival, 0));
        let dispatch = replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(r.state, ReplicaState::Active | ReplicaState::Draining)
                    && r.stages[0].is_free()
                    && !r.requests.is_empty()
            })
            .map(|(i, r)| {
                let close = if config.batching.is_full(r.requests.len()) {
                    now
                } else {
                    let oldest = *r.requests.front().expect("queue checked non-empty");
                    config.batching.close_deadline_ns(trace.arrivals_ns[oldest])
                };
                (close.max(now), EventKind::Dispatch, i, 0)
            })
            .min();
        let work_pending = next_arrival < trace.len()
            || replicas.iter().any(|r| r.in_fleet() && !r.pipeline_empty());
        let scale = (next_check_ns != u64::MAX && work_pending)
            .then(|| (next_check_ns.max(now), EventKind::Scale, usize::MAX, 0));

        // The total order over (time, kind, replica, stage) makes every step
        // — and therefore the whole scaling trajectory — deterministic.
        let Some((time, kind, index, stage)) = [completion, arrival, dispatch, scale]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };
        now = time;
        // Replicas whose warmup elapsed become routable before the event is
        // handled; nothing can have involved them earlier (arrivals are not
        // routed to warming replicas, so their pipelines are empty).
        for replica in &mut replicas {
            if let ReplicaState::Warming { ready_ns } = replica.state {
                if ready_ns <= now {
                    replica.state = ReplicaState::Active;
                }
            }
        }

        match kind {
            EventKind::Completion => {
                let slot = &mut replicas[index].stages[stage];
                let batch = slot.executing.take().expect("completion without a batch");
                slot.busy_until = None;
                if stage == last_stage {
                    for &request in &batch.requests {
                        completions.push((request, batch.planned_close_ns, batch.dispatch_ns, now));
                    }
                } else {
                    slot.done = Some(batch);
                }
                settle(
                    &mut replicas[index],
                    now,
                    model,
                    config.stage_queue_capacity,
                    &mut compute_uj,
                );
                if replicas[index].state == ReplicaState::Draining
                    && replicas[index].pipeline_empty()
                {
                    replicas[index].state = ReplicaState::Retired;
                    replicas[index].retired_ns = Some(now);
                }
            }
            EventKind::Arrival => {
                next_arrival += 1;
                let routable: Vec<usize> = replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.is_routable())
                    .map(|(i, _)| i)
                    .collect();
                let chosen = match config.routing {
                    RoutePolicy::RoundRobin => {
                        let chosen = routable[rr_cursor % routable.len()];
                        rr_cursor += 1;
                        chosen
                    }
                    RoutePolicy::LeastLoaded => routable
                        .iter()
                        .copied()
                        .min_by_key(|&i| (replicas[i].load(), i))
                        .expect("at least one active replica"),
                    RoutePolicy::JoinShortestQueue => routable
                        .iter()
                        .copied()
                        .min_by_key(|&i| (replicas[i].requests.len(), i))
                        .expect("at least one active replica"),
                };
                if replicas[chosen].requests.len() >= config.queue_capacity {
                    rejected += 1;
                } else {
                    replicas[chosen].requests.push_back(index);
                    let depth: u64 = replicas
                        .iter()
                        .filter(|r| r.in_fleet())
                        .map(|r| r.requests.len() as u64)
                        .sum();
                    max_queue_depth = max_queue_depth.max(depth);
                }
            }
            EventKind::Dispatch => {
                let replica = &mut replicas[index];
                let size = replica.requests.len().min(config.batching.max_batch_size);
                let members: Vec<usize> = replica.requests.drain(..size).collect();
                for &request in &members {
                    window_max_wait_ns = window_max_wait_ns.max(now - trace.arrivals_ns[request]);
                }
                batches_total += 1;
                batched_samples += members.len() as u64;
                replica.batches += 1;
                // When the batching policy decided this batch: the filling
                // member's arrival when size-triggered, the oldest member's
                // deadline otherwise. Later dispatch is replica-busy delay.
                let planned_close_ns = if config.batching.is_full(members.len()) {
                    trace.arrivals_ns[*members.last().expect("batch is non-empty")]
                } else {
                    config
                        .batching
                        .close_deadline_ns(trace.arrivals_ns[members[0]])
                }
                .min(now);
                replica.stages[0].queue.push_back(FleetBatch {
                    requests: members,
                    planned_close_ns,
                    dispatch_ns: now,
                });
                settle(
                    replica,
                    now,
                    model,
                    config.stage_queue_capacity,
                    &mut compute_uj,
                );
            }
            EventKind::Scale => {
                next_check_ns = now.saturating_add(match config.autoscaler {
                    AutoscalePolicy::Fixed => unreachable!("fixed fleets schedule no checks"),
                    AutoscalePolicy::QueueDepth {
                        check_interval_ns, ..
                    }
                    | AutoscalePolicy::SloHeadroom {
                        check_interval_ns, ..
                    } => check_interval_ns,
                });
                let provisioned = replicas
                    .iter()
                    .filter(|r| {
                        matches!(r.state, ReplicaState::Active | ReplicaState::Warming { .. })
                    })
                    .count();
                let active = replicas.iter().filter(|r| r.is_routable()).count();
                let (grow, shrink, min, max, warmup_ns) = match config.autoscaler {
                    AutoscalePolicy::Fixed => unreachable!("fixed fleets schedule no checks"),
                    AutoscalePolicy::QueueDepth {
                        up_per_replica,
                        down_per_replica,
                        min_replicas,
                        max_replicas,
                        warmup_ns,
                        ..
                    } => {
                        let waiting: u64 = replicas
                            .iter()
                            .filter(|r| r.in_fleet())
                            .map(|r| r.requests.len() as u64)
                            .sum();
                        (
                            waiting > up_per_replica * provisioned as u64,
                            waiting < down_per_replica * provisioned as u64,
                            min_replicas,
                            max_replicas,
                            warmup_ns,
                        )
                    }
                    AutoscalePolicy::SloHeadroom {
                        up_wait_permille,
                        down_wait_permille,
                        min_replicas,
                        max_replicas,
                        warmup_ns,
                        ..
                    } => {
                        // The worst wait since the last check: dispatched
                        // batches plus the age of the oldest request still
                        // waiting (a stuck queue must count even if nothing
                        // dispatched).
                        let oldest_waiting = replicas
                            .iter()
                            .filter(|r| r.in_fleet())
                            .filter_map(|r| r.requests.front())
                            .map(|&request| now - trace.arrivals_ns[request])
                            .max()
                            .unwrap_or(0);
                        let observed = window_max_wait_ns.max(oldest_waiting) as u128;
                        let slo = config.slo_ns as u128;
                        window_max_wait_ns = 0;
                        (
                            observed * 1000 > u128::from(up_wait_permille) * slo,
                            observed * 1000 < u128::from(down_wait_permille) * slo,
                            min_replicas,
                            max_replicas,
                            warmup_ns,
                        )
                    }
                };
                if grow && provisioned < max {
                    replicas.push(FleetReplica::new(
                        stages,
                        ReplicaState::Warming {
                            ready_ns: now.saturating_add(warmup_ns),
                        },
                        now,
                    ));
                    peak_replicas = peak_replicas.max(provisioned + 1);
                    scale_events.push(ScaleEvent {
                        time_ns: now,
                        from_replicas: provisioned,
                        to_replicas: provisioned + 1,
                    });
                } else if shrink && !grow && active > min {
                    let victim = replicas
                        .iter()
                        .enumerate()
                        .rev()
                        .find(|(_, r)| r.is_routable())
                        .map(|(i, _)| i)
                        .expect("active count checked above");
                    if replicas[victim].pipeline_empty() {
                        replicas[victim].state = ReplicaState::Retired;
                        replicas[victim].retired_ns = Some(now);
                    } else {
                        replicas[victim].state = ReplicaState::Draining;
                    }
                    scale_events.push(ScaleEvent {
                        time_ns: now,
                        from_replicas: provisioned,
                        to_replicas: provisioned - 1,
                    });
                }
            }
        }
    }

    let offered = trace.len() as u64;
    let completed = completions.len() as u64;
    let latency = LatencySummary::from_values(
        completions
            .iter()
            .map(|&(request, _, _, completion)| completion - trace.arrivals_ns[request])
            .collect(),
    );
    let queue_wait = LatencySummary::from_values(
        completions
            .iter()
            .map(|&(request, _, dispatch, _)| dispatch - trace.arrivals_ns[request])
            .collect(),
    );
    let phase_samples: Vec<PhaseSample> = completions
        .iter()
        .map(|&(request, planned_close, dispatch, completion)| {
            // A member can arrive after its batch's deadline already passed
            // while stage 0 was busy; clamp to its own lifetime so the
            // phases still sum to the end-to-end latency exactly.
            let arrival = trace.arrivals_ns[request];
            let close = planned_close.clamp(arrival, dispatch);
            PhaseSample {
                queue_wait_ns: close - arrival,
                batch_wait_ns: dispatch - close,
                execute_ns: completion - dispatch,
                merge_ns: 0,
            }
        })
        .collect();
    let phases = PhaseBreakdown::from_samples(&phase_samples);
    let makespan_ns = completions
        .iter()
        .map(|&(_, _, _, completion)| completion)
        .max()
        .unwrap_or(0);
    let slo_attained = completions
        .iter()
        .filter(|&&(request, _, _, completion)| {
            completion - trace.arrivals_ns[request] <= config.slo_ns
        })
        .count() as u64;

    let tiles_per_replica = model.tiles_per_replica();
    let mut tile_ns: u128 = 0;
    for replica in &replicas {
        let end = replica.retired_ns.unwrap_or(makespan_ns);
        tile_ns +=
            u128::from(end.saturating_sub(replica.started_ns)) * u128::from(tiles_per_replica);
    }
    let tile_ns = u64::try_from(tile_ns).unwrap_or(u64::MAX);
    // µW · ns = 1e-15 J = 1e-9 µJ.
    let idle_uj = tile_ns as f64 * config.idle_tile_uw * 1e-9;
    let total_uj = compute_uj + idle_uj;
    let final_replicas = replicas.iter().filter(|r| r.in_fleet()).count();
    let mean_replicas = if makespan_ns == 0 {
        final_replicas as f64
    } else {
        replicas
            .iter()
            .map(|r| {
                r.retired_ns
                    .unwrap_or(makespan_ns)
                    .saturating_sub(r.started_ns) as f64
            })
            .sum::<f64>()
            / makespan_ns as f64
    };

    Ok(FleetReport {
        model: model.model.clone(),
        config: *config,
        trace: *spec,
        stage_latency_ns: model.stages.iter().map(|s| s.latency_ns).collect(),
        stage_tiles: model.stages.iter().map(|s| s.tiles as u64).collect(),
        tiles_per_replica,
        offered,
        admitted: offered - rejected,
        rejected,
        completed,
        batches: batches_total,
        mean_batch_size: if batches_total == 0 {
            0.0
        } else {
            batched_samples as f64 / batches_total as f64
        },
        latency,
        queue_wait,
        phases,
        max_queue_depth,
        makespan_ns,
        samples_per_s: if makespan_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / makespan_ns as f64
        },
        slo_attained,
        slo_attainment: if offered == 0 {
            0.0
        } else {
            slo_attained as f64 / offered as f64
        },
        scale_events,
        peak_replicas,
        final_replicas,
        mean_replicas,
        peak_tiles: peak_replicas as u64 * tiles_per_replica,
        tile_ns,
        compute_uj,
        idle_uj,
        total_uj,
        joules_per_sample: if completed == 0 {
            0.0
        } else {
            total_uj * 1e-6 / completed as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchingPolicy;

    /// A hand-built two-stage model: stage 0 takes 1000 ns, stage 1 takes
    /// 500 ns; 1 µJ + 2 tiles vs 0.5 µJ + 1 tile.
    fn two_stage_model() -> FleetStageModel {
        FleetStageModel {
            model: "toy".to_string(),
            stages: vec![
                StageCost {
                    latency_ns: 1_000,
                    energy_uj_per_sample: 1.0,
                    tiles: 2,
                },
                StageCost {
                    latency_ns: 500,
                    energy_uj_per_sample: 0.5,
                    tiles: 1,
                },
            ],
        }
    }

    fn hand_trace(arrivals_ns: &[u64]) -> (TraceSpec, Trace) {
        (
            TraceSpec::poisson(1.0, arrivals_ns.len().max(1), 0),
            Trace {
                arrivals_ns: arrivals_ns.to_vec(),
            },
        )
    }

    fn single_batching() -> BatchingPolicy {
        BatchingPolicy {
            max_batch_size: 1,
            max_queue_delay_ns: 0,
        }
    }

    #[test]
    fn pipeline_overlaps_stages() {
        // Two requests, single-request batches: r0 dispatches at 0, finishes
        // stage 0 at 1000 and stage 1 at 1500. r1 arrives at 10, starts
        // stage 0 when it frees at 1000, finishes at 2500 — the pipeline
        // overlaps r1/stage0 with r0/stage1.
        let model = two_stage_model();
        let config = FleetConfig::default().with_batching(single_batching());
        let (spec, trace) = hand_trace(&[0, 10]);
        let report = simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
        assert_eq!(report.completed, 2);
        assert_eq!(report.makespan_ns, 2_500);
        assert_eq!(report.latency.max_ns, 2_490); // r1: 2500 - 10
        assert_eq!(report.stage_latency_ns, vec![1_000, 500]);
        assert_eq!(report.tiles_per_replica, 3);
        // Energy: 2 samples × 1.5 µJ compute + 3 tiles × 2500 ns × 50 µW.
        assert!((report.compute_uj - 3.0).abs() < 1e-12);
        assert!((report.idle_uj - 3.0 * 2_500.0 * 50.0 * 1e-9).abs() < 1e-12);
        assert_eq!(report.joules_per_sample, report.total_uj * 1e-6 / 2.0);
    }

    #[test]
    fn bounded_stage_queues_backpressure() {
        // Make stage 1 the bottleneck (10× slower) with a stage buffer of
        // one: stage 0 must hold finished batches, so its own queue backs
        // up and throughput is paced by stage 1 alone.
        let model = FleetStageModel {
            model: "toy".to_string(),
            stages: vec![
                StageCost {
                    latency_ns: 100,
                    energy_uj_per_sample: 0.0,
                    tiles: 1,
                },
                StageCost {
                    latency_ns: 1_000,
                    energy_uj_per_sample: 0.0,
                    tiles: 1,
                },
            ],
        };
        let config = FleetConfig {
            stage_queue_capacity: 1,
            ..FleetConfig::default().with_batching(single_batching())
        };
        let arrivals: Vec<u64> = (0..8).map(|i| i * 10).collect();
        let (spec, trace) = hand_trace(&arrivals);
        let report = simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
        assert_eq!(report.completed, 8);
        // Steady state is one completion per bottleneck interval: the last
        // completion is pipeline fill (1100) plus 7 more intervals.
        assert_eq!(report.makespan_ns, 1_100 + 7 * 1_000);
    }

    #[test]
    fn empty_traces_yield_default_summaries() {
        let model = two_stage_model();
        let (spec, trace) = hand_trace(&[]);
        let report =
            simulate_fleet(&model, &FleetConfig::default(), &spec, &trace).expect("simulate");
        assert_eq!(report.completed, 0);
        assert_eq!(report.latency, LatencySummary::default());
        assert_eq!(report.queue_wait, LatencySummary::default());
        assert_eq!(report.makespan_ns, 0);
        assert_eq!(report.samples_per_s, 0.0);
        assert_eq!(report.joules_per_sample, 0.0);
        assert!(report.scale_events.is_empty());
    }

    #[test]
    fn queue_depth_autoscaler_grows_and_shrinks_the_fleet() {
        let model = two_stage_model();
        let config = FleetConfig {
            autoscaler: AutoscalePolicy::QueueDepth {
                check_interval_ns: 2_000,
                up_per_replica: 4,
                down_per_replica: 1,
                min_replicas: 1,
                max_replicas: 4,
                warmup_ns: 1_000,
            },
            ..FleetConfig::default().with_batching(single_batching())
        };
        // A dense burst then silence: the fleet must grow under the burst
        // and drain back to the minimum while the backlog clears.
        let arrivals: Vec<u64> = (0..64).map(|i| i * 20).collect();
        let (spec, trace) = hand_trace(&arrivals);
        let report = simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
        assert_eq!(report.completed, 64);
        assert!(report.peak_replicas > 1, "fleet never grew: {report:?}");
        assert!(!report.scale_events.is_empty());
        assert!(report
            .scale_events
            .windows(2)
            .all(|w| w[0].time_ns <= w[1].time_ns));
        // Growth is visible in the events and capped by max_replicas.
        assert!(report.peak_replicas <= 4);
        assert!(report
            .scale_events
            .iter()
            .any(|e| e.to_replicas > e.from_replicas));
        // The fleet drains once the backlog clears.
        assert!(report.final_replicas < report.peak_replicas);
        // Replaying is byte-identical.
        let replay = simulate_fleet(&model, &config, &spec, &trace).expect("replay");
        assert_eq!(report.to_json(), replay.to_json());
    }

    #[test]
    fn slo_headroom_autoscaler_reacts_to_waits() {
        let model = two_stage_model();
        let config = FleetConfig {
            slo_ns: 4_000,
            autoscaler: AutoscalePolicy::SloHeadroom {
                check_interval_ns: 2_000,
                up_wait_permille: 250,
                down_wait_permille: 100,
                min_replicas: 1,
                max_replicas: 4,
                warmup_ns: 500,
            },
            ..FleetConfig::default().with_batching(single_batching())
        };
        let arrivals: Vec<u64> = (0..64).map(|i| i * 20).collect();
        let (spec, trace) = hand_trace(&arrivals);
        let report = simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
        assert_eq!(report.completed, 64);
        assert!(report.peak_replicas > 1, "fleet never grew: {report:?}");
    }

    #[test]
    fn draining_replicas_finish_their_work() {
        // One replica is enough after the burst; whatever the autoscaler
        // drains must still complete every admitted request.
        let model = two_stage_model();
        let config = FleetConfig {
            replicas: 3,
            autoscaler: AutoscalePolicy::QueueDepth {
                check_interval_ns: 1_000,
                up_per_replica: 1_000,
                down_per_replica: 2,
                min_replicas: 1,
                max_replicas: 3,
                warmup_ns: 0,
            },
            ..FleetConfig::default().with_batching(single_batching())
        };
        let arrivals: Vec<u64> = (0..12).map(|i| i * 50).collect();
        let (spec, trace) = hand_trace(&arrivals);
        let report = simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
        assert_eq!(report.completed + report.rejected, 12);
        assert_eq!(report.rejected, 0);
        assert!(report.final_replicas < 3, "{report:?}");
    }

    #[test]
    fn mismatched_stage_counts_are_rejected() {
        let model = two_stage_model();
        let config = FleetConfig::default().with_shards(3);
        let (spec, trace) = hand_trace(&[0]);
        assert!(simulate_fleet(&model, &config, &spec, &trace).is_err());
    }

    #[test]
    fn stage_models_come_from_profiles() {
        use camdnn::{LayerCost, ModelProfile};
        let profile = ModelProfile {
            model: "profiled".to_string(),
            layers: vec![
                LayerCost {
                    name: "conv1".to_string(),
                    node_id: 0,
                    latency_ns: 3_000.0,
                    energy_uj: 1.0,
                    tiles_used: 2,
                    units: 4,
                    traffic_bits: 100,
                },
                LayerCost {
                    name: "conv2".to_string(),
                    node_id: 2,
                    latency_ns: 5_000.0,
                    energy_uj: 2.0,
                    tiles_used: 3,
                    units: 6,
                    traffic_bits: 200,
                },
                LayerCost {
                    name: "fc".to_string(),
                    node_id: 4,
                    latency_ns: 2_000.0,
                    energy_uj: 0.5,
                    tiles_used: 1,
                    units: 1,
                    traffic_bits: 50,
                },
            ],
        };
        let model = FleetStageModel::from_profile(&profile, 2).expect("stage model");
        assert_eq!(model.model, "profiled");
        assert_eq!(model.stages.len(), 2);
        // Optimal 2-cut of [3000, 5000, 2000] is [3000 | 5000+2000]? No:
        // bottleneck of [3000 | 7000] is 7000, of [8000 | 2000] is 8000 —
        // the first cut wins.
        assert_eq!(model.stages[0].latency_ns, 3_000);
        assert_eq!(model.stages[1].latency_ns, 7_000);
        assert_eq!(model.stages[0].tiles, 2);
        assert_eq!(model.stages[1].tiles, 3);
        assert!((model.stages[1].energy_uj_per_sample - 2.5).abs() < 1e-12);
        assert_eq!(model.tiles_per_replica(), 5);
        assert_eq!(model.bottleneck_ns(), 7_000);
        assert_eq!(model.fill_ns(), 10_000);
        // More shards than layers is a planner error, surfaced as Backend.
        assert!(FleetStageModel::from_profile(&profile, 9).is_err());
    }
}
