//! Fleet outcome reporting: SLO attainment, scaling trajectory, energy cost.
//!
//! [`FleetReport`] is the fleet counterpart of
//! [`ServeReport`](crate::report::ServeReport): every time field is an exact
//! integer off the virtual clock and every rate is derived from those
//! integers by a fixed formula, so the JSON rendering is byte-identical
//! across runs and `RAYON_NUM_THREADS` settings.

use super::FleetConfig;
use crate::report::{LatencySummary, PhaseBreakdown};
use crate::trace::TraceSpec;
use serde::{Deserialize, Serialize};

/// One autoscaler decision: at `time_ns` the provisioned replica count moved
/// from `from_replicas` to `to_replicas`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Virtual time of the decision, in nanoseconds.
    pub time_ns: u64,
    /// Provisioned replicas (active + warming) before the decision.
    pub from_replicas: usize,
    /// Provisioned replicas after the decision.
    pub to_replicas: usize,
}

/// The outcome of replaying one trace through a fleet of pipelined replicas:
/// load accounting, latency distributions, the scaling trajectory, and the
/// energy cost model behind the pareto sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// The served model's name.
    pub model: String,
    /// The fleet configuration (shards, replicas, autoscaler, power).
    pub config: FleetConfig,
    /// The trace that was served (process, request count, seed).
    pub trace: TraceSpec,
    /// Per-stage batch service latency, in pipeline order, in nanoseconds.
    pub stage_latency_ns: Vec<u64>,
    /// Per-stage tile footprint, in pipeline order.
    pub stage_tiles: Vec<u64>,
    /// Tiles one replica holds: the sum of its stages' footprints.
    pub tiles_per_replica: u64,
    /// Requests in the trace.
    pub offered: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests rejected by admission control (queue at capacity).
    pub rejected: u64,
    /// Requests that completed the full pipeline.
    pub completed: u64,
    /// Stage-0 batches dispatched across the fleet.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
    /// End-to-end request latency distribution (queueing + pipeline).
    pub latency: LatencySummary,
    /// Queueing-delay distribution (arrival to stage-0 dispatch).
    pub queue_wait: LatencySummary,
    /// Per-request latency decomposed into queue wait / batch wait /
    /// execute / merge (see [`PhaseBreakdown`]; per request the four phases
    /// sum to the end-to-end latency exactly).
    pub phases: PhaseBreakdown,
    /// Largest total number of waiting requests observed across the fleet.
    pub max_queue_depth: u64,
    /// Virtual time from trace start to the last completion, in nanoseconds.
    pub makespan_ns: u64,
    /// Achieved throughput: `completed · 1e9 / makespan_ns`.
    pub samples_per_s: f64,
    /// Completed requests whose end-to-end latency met `config.slo_ns`.
    pub slo_attained: u64,
    /// `slo_attained / offered` — rejected requests count against the SLO.
    pub slo_attainment: f64,
    /// The autoscaler's decisions, in virtual-time order.
    pub scale_events: Vec<ScaleEvent>,
    /// Largest provisioned replica count observed.
    pub peak_replicas: usize,
    /// Replicas still in the fleet (not retired) when the trace drained.
    pub final_replicas: usize,
    /// Time-averaged provisioned replica count over the makespan.
    pub mean_replicas: f64,
    /// `peak_replicas · tiles_per_replica` — the provisioning high-water mark.
    pub peak_tiles: u64,
    /// Integrated tile-time: Σ over replicas of (lifetime · tiles), in
    /// tile-nanoseconds (saturating at `u64::MAX`).
    pub tile_ns: u64,
    /// Compute energy: Σ over dispatches of per-stage energy × batch size, in
    /// microjoules.
    pub compute_uj: f64,
    /// Static energy: `tile_ns · idle_tile_uw`, in microjoules.
    pub idle_uj: f64,
    /// `compute_uj + idle_uj`.
    pub total_uj: f64,
    /// `total_uj · 1e-6 / completed`, in joules — the pareto cost axis.
    pub joules_per_sample: f64,
}

impl FleetReport {
    /// Serializes the report as one JSON object (single line).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization cannot fail")
    }

    /// Parses a document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a serde error when the document does not describe a report.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(text)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: s{} {} — {}/{} served ({} rejected), {:.1} samples/s, p99 {:.3} ms, \
             SLO {:.1}% @ {:.2} ms, peak {} replicas ({} tiles), {:.4} uJ/sample",
            self.model,
            self.config.shards,
            self.config.autoscaler.label(),
            self.completed,
            self.offered,
            self.rejected,
            self.samples_per_s,
            self.latency.p99_ms(),
            self.slo_attainment * 100.0,
            self.config.slo_ns as f64 / 1e6,
            self.peak_replicas,
            self.peak_tiles,
            self.joules_per_sample * 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        FleetReport {
            model: "toy".to_string(),
            config: FleetConfig::default(),
            trace: TraceSpec::poisson(1_000.0, 64, 7),
            stage_latency_ns: vec![1_000, 500],
            stage_tiles: vec![2, 1],
            tiles_per_replica: 3,
            offered: 64,
            admitted: 64,
            rejected: 0,
            completed: 64,
            batches: 12,
            mean_batch_size: 64.0 / 12.0,
            latency: LatencySummary::from_values(vec![1_500, 2_000, 2_500]),
            queue_wait: LatencySummary::from_values(vec![0, 10, 20]),
            phases: PhaseBreakdown::default(),
            max_queue_depth: 9,
            makespan_ns: 100_000,
            samples_per_s: 64.0 * 1e9 / 100_000.0,
            slo_attained: 64,
            slo_attainment: 1.0,
            scale_events: vec![ScaleEvent {
                time_ns: 5_000,
                from_replicas: 1,
                to_replicas: 2,
            }],
            peak_replicas: 2,
            final_replicas: 1,
            mean_replicas: 1.4,
            peak_tiles: 6,
            tile_ns: 300_000,
            compute_uj: 96.0,
            idle_uj: 0.015,
            total_uj: 96.015,
            joules_per_sample: 96.015 * 1e-6 / 64.0,
        }
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let report = report();
        let json = report.to_json();
        let back = FleetReport::from_json(&json).expect("parse");
        assert_eq!(report, back);
        assert_eq!(json, back.to_json());
        assert!(FleetReport::from_json("not json").is_err());
    }

    #[test]
    fn summary_mentions_the_load_bearing_numbers() {
        let text = report().summary();
        assert!(text.contains("64/64"), "{text}");
        assert!(text.contains("peak 2 replicas"), "{text}");
        assert!(text.contains("6 tiles"), "{text}");
    }
}
