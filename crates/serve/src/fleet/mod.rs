//! Fleet-scale serving: model-parallel replicas, pipelined shards, and
//! autoscaling under million-user traces.
//!
//! The per-inference stack prices one model on one accelerator; the fleet
//! view asks the capacity-planning question: *how many tiles and replicas
//! does an SLO point cost under realistic traffic?* This module joins the
//! deterministic serving simulator with the partition compiler's stage
//! planning:
//!
//! - each **replica** is model-parallel: its layers are cut into `shards`
//!   pipeline stages by [`apc::plan_stages`] over the per-layer cost profile
//!   a [`camdnn::FunctionalBackend`] measures
//!   ([`ModelProfile`](camdnn::ModelProfile) — latencies from the
//!   tile-parallel partition-quality model, energies from the CAM counters
//!   plus routing);
//! - stages are connected by **bounded queues** with head-of-line blocking,
//!   so a slow stage backpressures the pipeline exactly as a hardware FIFO
//!   would;
//! - an **autoscaler** ([`AutoscalePolicy`]) adds and drains replicas as
//!   deterministic events in the simulation's total tie order, driven by
//!   queue depth or SLO headroom;
//! - a **cost model** integrates compute energy (per-stage microjoules per
//!   sample) and provisioned tile-time (static power over every tile a
//!   replica holds, from creation to retirement), yielding joules/sample per
//!   SLO point.
//!
//! Everything runs on the virtual clock of [`crate::sim`]: the same trace
//! seed produces byte-identical [`FleetReport`](report::FleetReport) JSON on
//! every run, at any `RAYON_NUM_THREADS` and on any host. The simulation is
//! a pure cost model (no payload execution), so traces with millions of
//! requests replay in seconds.

mod experiment;
mod report;
mod sim;

pub use experiment::{FleetGrid, FleetRecord, FleetResultSet, FleetScenario, FleetSession};
pub use report::{FleetReport, ScaleEvent};
pub use sim::{simulate_fleet, FleetStageModel, StageCost};

use crate::config::{BatchingPolicy, RoutePolicy};
use crate::error::{Result, ServeError};
use serde::{Deserialize, Serialize};

/// How the fleet adds and removes replicas while a trace replays.
///
/// Scale decisions fire as deterministic events on the virtual clock (after
/// completions, arrivals and dispatches at the same timestamp), so the same
/// trace always produces the same scaling trajectory. A scale-up provisions
/// a replica that becomes routable after its warmup; a scale-down drains the
/// highest-index active replica (it finishes its queued work, then retires
/// and stops accruing tile-time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AutoscalePolicy {
    /// No autoscaling: the initial replica count serves the whole trace.
    Fixed,
    /// Scale on total queue depth: at every check, scale up when more than
    /// `up_per_replica` requests wait per provisioned replica, down when
    /// fewer than `down_per_replica` do.
    QueueDepth {
        /// Virtual time between scale decisions, in nanoseconds.
        check_interval_ns: u64,
        /// Waiting requests per provisioned replica above which the fleet
        /// grows.
        up_per_replica: u64,
        /// Waiting requests per provisioned replica below which the fleet
        /// shrinks (must be below `up_per_replica` for hysteresis).
        down_per_replica: u64,
        /// Smallest number of serving replicas the fleet may drain to.
        min_replicas: usize,
        /// Largest number of provisioned replicas the fleet may grow to.
        max_replicas: usize,
        /// Delay between provisioning a replica and it accepting traffic,
        /// in nanoseconds.
        warmup_ns: u64,
    },
    /// Scale on SLO headroom: at every check, compare the worst stage-0
    /// queue wait observed since the last check (including the age of the
    /// oldest still-waiting request) against the SLO. Scale up when the wait
    /// exceeds `up_wait_permille` ‰ of the SLO, down when it stays under
    /// `down_wait_permille` ‰.
    SloHeadroom {
        /// Virtual time between scale decisions, in nanoseconds.
        check_interval_ns: u64,
        /// Worst observed wait, in thousandths of the SLO, above which the
        /// fleet grows.
        up_wait_permille: u64,
        /// Worst observed wait, in thousandths of the SLO, below which the
        /// fleet shrinks (must be below `up_wait_permille`).
        down_wait_permille: u64,
        /// Smallest number of serving replicas the fleet may drain to.
        min_replicas: usize,
        /// Largest number of provisioned replicas the fleet may grow to.
        max_replicas: usize,
        /// Delay between provisioning a replica and it accepting traffic,
        /// in nanoseconds.
        warmup_ns: u64,
    },
}

impl AutoscalePolicy {
    /// Short label used in scenario names (`fixed`, `qd64-8`, `slo500-50`).
    pub fn label(&self) -> String {
        match self {
            AutoscalePolicy::Fixed => "fixed".to_string(),
            AutoscalePolicy::QueueDepth {
                up_per_replica,
                down_per_replica,
                ..
            } => format!("qd{up_per_replica}-{down_per_replica}"),
            AutoscalePolicy::SloHeadroom {
                up_wait_permille,
                down_wait_permille,
                ..
            } => format!("slo{up_wait_permille}-{down_wait_permille}"),
        }
    }

    fn validate(&self, initial_replicas: usize) -> Result<()> {
        let (interval, min, max, up, down) = match *self {
            AutoscalePolicy::Fixed => return Ok(()),
            AutoscalePolicy::QueueDepth {
                check_interval_ns,
                up_per_replica,
                down_per_replica,
                min_replicas,
                max_replicas,
                ..
            } => (
                check_interval_ns,
                min_replicas,
                max_replicas,
                up_per_replica,
                down_per_replica,
            ),
            AutoscalePolicy::SloHeadroom {
                check_interval_ns,
                up_wait_permille,
                down_wait_permille,
                min_replicas,
                max_replicas,
                ..
            } => (
                check_interval_ns,
                min_replicas,
                max_replicas,
                up_wait_permille,
                down_wait_permille,
            ),
        };
        let reason = if interval == 0 {
            "autoscaler check interval must be at least 1 ns"
        } else if min == 0 {
            "min_replicas must be at least 1"
        } else if max < min {
            "max_replicas must be at least min_replicas"
        } else if initial_replicas < min || initial_replicas > max {
            "initial replicas must lie within [min_replicas, max_replicas]"
        } else if down >= up {
            "the scale-down threshold must be below the scale-up threshold"
        } else {
            return Ok(());
        };
        Err(ServeError::InvalidConfig {
            reason: reason.to_string(),
        })
    }
}

/// Full configuration of one fleet simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Pipeline stages each replica's layers are cut into.
    pub shards: usize,
    /// Initial number of replicas (the permanent count under
    /// [`AutoscalePolicy::Fixed`]).
    pub replicas: usize,
    /// The stage-0 dynamic-batching window; a closed batch traverses the
    /// whole stage pipeline as one unit (packed-batch execution is
    /// batch-invariant in latency).
    pub batching: BatchingPolicy,
    /// Admission limit: requests *waiting* before stage 0 per replica beyond
    /// which submits are rejected.
    pub queue_capacity: usize,
    /// Batches buffered between consecutive stages; a full buffer blocks the
    /// upstream stage (head-of-line blocking).
    pub stage_queue_capacity: usize,
    /// How requests are routed over the active replicas.
    pub routing: RoutePolicy,
    /// The end-to-end latency objective, in nanoseconds.
    pub slo_ns: u64,
    /// The autoscaling policy.
    pub autoscaler: AutoscalePolicy,
    /// Static power of one provisioned tile, in microwatts — integrated over
    /// every tile of every replica from creation to retirement.
    pub idle_tile_uw: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 2,
            replicas: 1,
            batching: BatchingPolicy::default(),
            queue_capacity: 256,
            stage_queue_capacity: 2,
            routing: RoutePolicy::RoundRobin,
            slo_ns: 50_000_000,
            autoscaler: AutoscalePolicy::Fixed,
            idle_tile_uw: 50.0,
        }
    }
}

impl FleetConfig {
    /// Returns a copy with `shards` pipeline stages per replica.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with `replicas` initial replicas.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Returns a copy with the given stage-0 batching window.
    #[must_use]
    pub fn with_batching(mut self, batching: BatchingPolicy) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given autoscaling policy.
    #[must_use]
    pub fn with_autoscaler(mut self, autoscaler: AutoscalePolicy) -> Self {
        self.autoscaler = autoscaler;
        self
    }

    /// Returns a copy with the SLO target set to `slo_ms` milliseconds
    /// (rounded to whole nanoseconds via [`crate::config::ms_to_ns`]).
    #[must_use]
    pub fn with_slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ns = crate::config::ms_to_ns(slo_ms);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any knob would stall the
    /// fleet (zero shards, replicas, batch size or queue room), the static
    /// power is not a finite non-negative number, or the autoscaler's
    /// thresholds are inconsistent.
    pub fn validate(&self) -> Result<()> {
        let reason = if self.shards == 0 {
            "at least one pipeline stage is required"
        } else if self.replicas == 0 {
            "at least one replica is required"
        } else if self.batching.max_batch_size == 0 {
            "max_batch_size must be at least 1"
        } else if self.queue_capacity == 0 {
            "queue_capacity must be at least 1"
        } else if self.stage_queue_capacity == 0 {
            "stage_queue_capacity must be at least 1"
        } else if !(self.idle_tile_uw.is_finite() && self.idle_tile_uw >= 0.0) {
            "idle_tile_uw must be a finite non-negative power"
        } else {
            return self.autoscaler.validate(self.replicas);
        };
        Err(ServeError::InvalidConfig {
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autoscaler_labels_are_stable() {
        assert_eq!(AutoscalePolicy::Fixed.label(), "fixed");
        assert_eq!(
            AutoscalePolicy::QueueDepth {
                check_interval_ns: 1_000_000,
                up_per_replica: 64,
                down_per_replica: 8,
                min_replicas: 1,
                max_replicas: 8,
                warmup_ns: 0,
            }
            .label(),
            "qd64-8"
        );
        assert_eq!(
            AutoscalePolicy::SloHeadroom {
                check_interval_ns: 1_000_000,
                up_wait_permille: 500,
                down_wait_permille: 50,
                min_replicas: 1,
                max_replicas: 8,
                warmup_ns: 0,
            }
            .label(),
            "slo500-50"
        );
    }

    #[test]
    fn validation_rejects_stalling_fleets() {
        assert!(FleetConfig::default().validate().is_ok());
        for broken in [
            FleetConfig::default().with_shards(0),
            FleetConfig::default().with_replicas(0),
            FleetConfig {
                queue_capacity: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                stage_queue_capacity: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                idle_tile_uw: f64::NAN,
                ..FleetConfig::default()
            },
            FleetConfig {
                idle_tile_uw: -1.0,
                ..FleetConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }

    #[test]
    fn validation_rejects_inconsistent_autoscalers() {
        let policy = |up, down, min, max| AutoscalePolicy::QueueDepth {
            check_interval_ns: 1_000_000,
            up_per_replica: up,
            down_per_replica: down,
            min_replicas: min,
            max_replicas: max,
            warmup_ns: 0,
        };
        let with = |p| FleetConfig::default().with_replicas(2).with_autoscaler(p);
        assert!(with(policy(64, 8, 1, 8)).validate().is_ok());
        // down >= up: flapping.
        assert!(with(policy(8, 8, 1, 8)).validate().is_err());
        // min of zero, max < min, initial outside [min, max].
        assert!(with(policy(64, 8, 0, 8)).validate().is_err());
        assert!(with(policy(64, 8, 4, 2)).validate().is_err());
        assert!(with(policy(64, 8, 3, 8)).validate().is_err());
        // zero check interval.
        assert!(with(AutoscalePolicy::SloHeadroom {
            check_interval_ns: 0,
            up_wait_permille: 500,
            down_wait_permille: 50,
            min_replicas: 1,
            max_replicas: 8,
            warmup_ns: 0,
        })
        .validate()
        .is_err());
    }
}
