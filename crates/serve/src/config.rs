//! Serving configuration: replica fleet, dynamic-batching window, admission
//! control and the latency SLO.

use crate::error::{Result, ServeError};
use serde::{Deserialize, Serialize};

/// Converts a duration in milliseconds to whole nanoseconds: round to the
/// nearest nanosecond, then clamp to at least one so no modeled duration is
/// ever zero on the virtual clock.
///
/// This is the *single* ms→ns conversion of the serving stack — SLO targets,
/// modeled service latencies and fleet stage costs all go through it, so a
/// boundary value like `0.29 ms` means the same `290_000 ns` everywhere
/// (truncating `as u64` casts read `0.29 * 1e6 = 289999.999…` as `289_999`).
pub fn ms_to_ns(ms: f64) -> u64 {
    ((ms * 1e6).round() as u64).max(1)
}

/// How incoming requests are spread over the model replicas.
///
/// All three policies are deterministic given the same arrival sequence and
/// queue states, which is what makes the simulation mode replayable; ties are
/// always broken towards the lowest replica index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RoutePolicy {
    /// Cycle through the replicas in index order, one request each.
    RoundRobin,
    /// Send the request to the replica with the fewest outstanding samples
    /// (waiting plus in flight).
    LeastLoaded,
    /// Send the request to the replica with the shortest *waiting* queue,
    /// ignoring work already dispatched.
    JoinShortestQueue,
}

impl RoutePolicy {
    /// Short label used in scenario names and tables (`rr`, `ll`, `jsq`).
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::LeastLoaded => "ll",
            RoutePolicy::JoinShortestQueue => "jsq",
        }
    }
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The dynamic-batching window: a batch closes at `max_batch_size` requests
/// or when the oldest queued request has waited `max_queue_delay_ns`,
/// whichever happens first.
///
/// `max_batch_size = 1` degenerates to request-at-a-time dispatch (the
/// baseline the serving bench compares against); `max_queue_delay_ns = 0`
/// closes a batch as soon as the worker is free, taking whatever is queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchingPolicy {
    /// Largest number of requests packed into one backend dispatch.
    pub max_batch_size: usize,
    /// Longest time the oldest queued request may wait before its batch is
    /// closed, in nanoseconds.
    pub max_queue_delay_ns: u64,
}

impl Default for BatchingPolicy {
    /// Close at 8 requests or 500 µs, whichever first.
    fn default() -> Self {
        BatchingPolicy::new(8, 500)
    }
}

impl BatchingPolicy {
    /// A policy closing at `max_batch_size` requests or `delay_us`
    /// microseconds, whichever first.
    pub fn new(max_batch_size: usize, delay_us: u64) -> Self {
        BatchingPolicy {
            max_batch_size,
            max_queue_delay_ns: delay_us * 1_000,
        }
    }

    /// Request-at-a-time dispatch: batches of one, no waiting.
    pub fn single() -> Self {
        BatchingPolicy {
            max_batch_size: 1,
            max_queue_delay_ns: 0,
        }
    }

    /// Short label used in scenario names (`b8/200us`).
    pub fn label(&self) -> String {
        format!(
            "b{}/{}us",
            self.max_batch_size,
            self.max_queue_delay_ns / 1_000
        )
    }

    /// Whether `queued` requests already fill a batch.
    pub fn is_full(&self, queued: usize) -> bool {
        queued >= self.max_batch_size
    }

    /// The time at which a batch whose oldest member joined the queue at
    /// `oldest_enqueue_ns` must close even if still short of
    /// [`max_batch_size`](Self::max_batch_size).
    pub fn close_deadline_ns(&self, oldest_enqueue_ns: u64) -> u64 {
        oldest_enqueue_ns.saturating_add(self.max_queue_delay_ns)
    }
}

/// Full configuration of a serving runtime instance (threaded server or
/// deterministic simulation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Number of independent model replicas, each with its own queue and
    /// worker.
    pub replicas: usize,
    /// The dynamic-batching window.
    pub batching: BatchingPolicy,
    /// Admission limit: requests *waiting* per replica beyond which submits
    /// are rejected (or block, on the backpressure path).
    pub queue_capacity: usize,
    /// How requests are routed to replicas.
    pub routing: RoutePolicy,
    /// The latency objective a request must meet to count towards
    /// [`ServeReport::slo_attainment`](crate::report::ServeReport), in
    /// nanoseconds end to end (queueing plus service).
    pub slo_ns: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 1,
            batching: BatchingPolicy::default(),
            queue_capacity: 256,
            routing: RoutePolicy::RoundRobin,
            slo_ns: 50_000_000,
        }
    }
}

impl ServeConfig {
    /// Returns a copy with `replicas` model replicas.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Returns a copy with the given batching window.
    #[must_use]
    pub fn with_batching(mut self, batching: BatchingPolicy) -> Self {
        self.batching = batching;
        self
    }

    /// Returns a copy with the given per-replica queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Returns a copy with the given routing policy.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutePolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Returns a copy with the SLO target set to `slo_ms` milliseconds
    /// (rounded to whole nanoseconds via [`ms_to_ns`]).
    #[must_use]
    pub fn with_slo_ms(mut self, slo_ms: f64) -> Self {
        self.slo_ns = ms_to_ns(slo_ms);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any knob would stall the
    /// runtime: zero replicas, a zero batch size, or a zero queue capacity.
    pub fn validate(&self) -> Result<()> {
        let reason = if self.replicas == 0 {
            "at least one replica is required"
        } else if self.batching.max_batch_size == 0 {
            "max_batch_size must be at least 1"
        } else if self.queue_capacity == 0 {
            "queue_capacity must be at least 1"
        } else {
            return Ok(());
        };
        Err(ServeError::InvalidConfig {
            reason: reason.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_window_closes_on_size_or_deadline() {
        let policy = BatchingPolicy::new(4, 200);
        assert!(!policy.is_full(3));
        assert!(policy.is_full(4));
        assert_eq!(policy.close_deadline_ns(1_000), 201_000);
        assert_eq!(policy.label(), "b4/200us");
        assert_eq!(BatchingPolicy::single().label(), "b1/0us");
    }

    #[test]
    fn deadline_saturates_instead_of_wrapping() {
        let policy = BatchingPolicy::new(4, u64::MAX / 1_000);
        assert_eq!(policy.close_deadline_ns(u64::MAX - 5), u64::MAX);
    }

    #[test]
    fn validation_rejects_stalling_configs() {
        assert!(ServeConfig::default().validate().is_ok());
        for broken in [
            ServeConfig::default().with_replicas(0),
            ServeConfig::default().with_batching(BatchingPolicy::new(0, 10)),
            ServeConfig::default().with_queue_capacity(0),
        ] {
            let err = broken.validate().expect_err("must be rejected");
            assert!(matches!(err, ServeError::InvalidConfig { .. }), "{err}");
        }
    }

    #[test]
    fn ms_to_ns_rounds_and_clamps_at_the_boundary() {
        // 0.29 * 1e6 = 289999.99999999994 in f64: a truncating cast loses a
        // nanosecond, round-and-clamp does not. Pinned so every ms→ns call
        // site (SLO setters, executor latency, fleet stage costs) agrees.
        assert_eq!(ms_to_ns(0.29), 290_000);
        assert_eq!(ms_to_ns(1.5), 1_500_000);
        assert_eq!(ms_to_ns(0.0), 1);
        assert_eq!(ms_to_ns(0.0000004), 1); // rounds to zero -> clamped
        assert_eq!(ServeConfig::default().with_slo_ms(0.29).slo_ns, 290_000);
    }

    #[test]
    fn route_policy_labels_are_stable() {
        assert_eq!(RoutePolicy::RoundRobin.to_string(), "rr");
        assert_eq!(RoutePolicy::LeastLoaded.to_string(), "ll");
        assert_eq!(RoutePolicy::JoinShortestQueue.to_string(), "jsq");
    }
}
