//! `camdnn-serve`: a deterministic dynamic-batching inference server for the
//! CAM/RTM stack.
//!
//! PR 4 gave every backend a batch dimension; this crate adds the layer that
//! decides *which* requests form a batch under live load:
//!
//! * [`Server`] — a threaded serving runtime (hand-rolled on `std::thread`,
//!   channels and condvars; no async crates exist in the vendored build):
//!   per-replica request queues with admission control
//!   ([`Server::try_submit`]) and backpressure ([`Server::submit`]), dynamic
//!   batching workers that close a batch at `max_batch_size` or
//!   `max_queue_delay` (whichever first), pluggable replica routing
//!   ([`RoutePolicy`]: round-robin, least-loaded, join-shortest-queue), and
//!   graceful shutdown that drains every admitted request.
//! * [`simulate`] — the same decision rules replayed on a **virtual clock**
//!   against a seeded [`TraceSpec`] (Poisson or bursty arrivals): a fixed
//!   trace seed reproduces the exact same batch compositions, per-request
//!   logits (bit-identical to solo `run_batch` calls) and latency statistics
//!   on every run, at any `RAYON_NUM_THREADS`.
//! * [`ServeReport`] — p50/p95/p99 latency, queue behaviour, achieved
//!   samples/s and SLO attainment, with byte-identical JSON for a fixed
//!   seed.
//! * [`ServeGrid`] / [`ServeSession`] — serving sweeps (traffic intensity ×
//!   batching policy × replica count) in the `camdnn::experiment` idiom,
//!   sharing one compile cache across all scenarios.
//! * [`fleet`] — fleet-scale capacity planning: model-parallel replicas whose
//!   layers are cut into pipeline stages by [`apc::plan_stages`] over a
//!   profiled per-layer cost model, bounded inter-stage queues with
//!   head-of-line blocking, deterministic autoscaling ([`AutoscalePolicy`]),
//!   diurnal / flash-crowd traffic, and a joules-per-sample cost model;
//!   [`FleetGrid`] sweeps shards × replicas × autoscaler policy into a
//!   pareto table over SLO attainment vs energy.
//!
//! Batches dispatch through
//! [`camdnn::InferenceBackend::evaluate_requests_cached`] against a shared
//! [`apc::CompileCache`]; the bit-level
//! [`FunctionalBackend`](camdnn::FunctionalBackend) is the canonical serving
//! backend because its per-request logits are value-identical to solo runs at
//! any batch composition (the batch-equivalence invariant of PR 4).

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod executor;
pub mod experiment;
pub mod fleet;
pub mod report;
pub mod server;
pub mod sim;
pub mod trace;

pub use config::{BatchingPolicy, RoutePolicy, ServeConfig};
pub use error::{Result, ServeError};
pub use executor::{BackendExecutor, ExecutedBatch, RequestExecutor};
pub use experiment::{ServeGrid, ServeRecord, ServeResultSet, ServeScenario, ServeSession};
pub use fleet::{
    simulate_fleet, AutoscalePolicy, FleetConfig, FleetGrid, FleetRecord, FleetReport,
    FleetResultSet, FleetScenario, FleetSession, FleetStageModel, ScaleEvent, StageCost,
};
pub use report::{LatencySummary, PhaseBreakdown, PhaseSample, ServeReport};
pub use server::{Completion, Server, ServerCounters, Ticket};
pub use sim::{simulate, BatchRecord, SimCompletion, SimOutcome};
pub use trace::{ArrivalProcess, PayloadSpec, Trace, TraceSpec};
