//! Seeded trace generation: arrival processes and request payloads.
//!
//! A [`TraceSpec`] describes *when* requests arrive (a Poisson stream or a
//! two-state bursty process) and expands deterministically — the same seed
//! always yields the identical [`Trace`] — via the vendored `rand_chacha`
//! generator. A [`PayloadSpec`] describes *what* each request carries:
//! synthetic model inputs seeded per request, or quantized images from the
//! [`tnn::dataset::SyntheticBlobs`] task (the dataset-backed path).

use crate::error::{Result, ServeError};
use camdnn::FunctionalBackend;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use tnn::dataset::{Batch, SyntheticBlobs};
use tnn::model::ModelGraph;
use tnn::{Quantizer, Tensor};

/// The stochastic process generating request arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Memoryless arrivals: independent exponential inter-arrival gaps at
    /// `rate_per_s` requests per second.
    Poisson {
        /// Mean arrival rate, in requests per second.
        rate_per_s: f64,
    },
    /// A two-state modulated Poisson process: runs of requests arrive at
    /// `burst_rate_per_s`, separated by runs at `idle_rate_per_s`; after each
    /// request the state toggles with probability `1 / mean_phase_requests`.
    Bursty {
        /// Arrival rate of the idle phase, in requests per second.
        idle_rate_per_s: f64,
        /// Arrival rate of the burst phase, in requests per second.
        burst_rate_per_s: f64,
        /// Mean number of requests per phase before the state toggles
        /// (strictly greater than one — a mean of one flips state on every
        /// request, degenerating to plain Poisson at the mean rate).
        mean_phase_requests: f64,
    },
    /// A diurnal (daily-cycle) load: Poisson arrivals whose instantaneous
    /// rate is modulated sinusoidally around `base_rate_per_s`, the classic
    /// shape of a million-user service seen from one region. At virtual time
    /// `t` seconds the rate is `base * (1 + swing * sin(2π t / period_s))`.
    Diurnal {
        /// Mean arrival rate over a full cycle, in requests per second.
        base_rate_per_s: f64,
        /// Relative peak-to-mean swing, in `[0, 1)` so the trough rate stays
        /// strictly positive.
        swing: f64,
        /// Cycle period, in (virtual) seconds.
        period_s: f64,
    },
    /// A flash crowd: baseline Poisson arrivals at `base_rate_per_s`, with
    /// the rate multiplied by `spike` inside the window
    /// `[start_s, start_s + duration_s)` — a launch, an outage recovery, a
    /// viral link.
    FlashCrowd {
        /// Baseline arrival rate, in requests per second.
        base_rate_per_s: f64,
        /// Rate multiplier inside the crowd window (at least one).
        spike: f64,
        /// Window start, in (virtual) seconds from trace start.
        start_s: f64,
        /// Window length, in seconds (strictly positive).
        duration_s: f64,
    },
}

/// Whether `value` is a usable, finite, strictly positive rate or duration.
fn finite_positive(value: f64) -> bool {
    value.is_finite() && value > 0.0
}

impl ArrivalProcess {
    /// Short label used in scenario names (`poisson@2000`, `bursty@50-4000`,
    /// `diurnal@2000`, `flash@500x20`).
    pub fn label(&self) -> String {
        match self {
            ArrivalProcess::Poisson { rate_per_s } => format!("poisson@{rate_per_s:.0}"),
            ArrivalProcess::Bursty {
                idle_rate_per_s,
                burst_rate_per_s,
                ..
            } => format!("bursty@{idle_rate_per_s:.0}-{burst_rate_per_s:.0}"),
            ArrivalProcess::Diurnal {
                base_rate_per_s, ..
            } => format!("diurnal@{base_rate_per_s:.0}"),
            ArrivalProcess::FlashCrowd {
                base_rate_per_s,
                spike,
                ..
            } => format!("flash@{base_rate_per_s:.0}x{spike:.0}"),
        }
    }

    fn validate(&self) -> Result<()> {
        let ok = match self {
            ArrivalProcess::Poisson { rate_per_s } => finite_positive(*rate_per_s),
            ArrivalProcess::Bursty {
                idle_rate_per_s,
                burst_rate_per_s,
                mean_phase_requests,
            } => {
                finite_positive(*idle_rate_per_s)
                    && finite_positive(*burst_rate_per_s)
                    // `>= 1.0` would admit the degenerate per-request flip
                    // (and NaN/∞ pass a bare `> 0.0` comparison elsewhere), so
                    // the phase length must be a finite mean above one.
                    && mean_phase_requests.is_finite()
                    && *mean_phase_requests > 1.0
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                swing,
                period_s,
            } => {
                finite_positive(*base_rate_per_s)
                    && swing.is_finite()
                    && (0.0..1.0).contains(swing)
                    && finite_positive(*period_s)
            }
            ArrivalProcess::FlashCrowd {
                base_rate_per_s,
                spike,
                start_s,
                duration_s,
            } => {
                finite_positive(*base_rate_per_s)
                    && spike.is_finite()
                    && *spike >= 1.0
                    && start_s.is_finite()
                    && *start_s >= 0.0
                    && finite_positive(*duration_s)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ServeError::InvalidConfig {
                reason: format!("arrival process has an invalid rate, phase or window: {self:?}"),
            })
        }
    }

    /// The instantaneous arrival rate at virtual time `now_ns`, for the
    /// rate-modulated processes; the state-dependent processes return their
    /// current-state rate unchanged.
    fn rate_at(&self, now_ns: u64, bursting: bool) -> f64 {
        let t_s = now_ns as f64 * 1e-9;
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Bursty {
                idle_rate_per_s,
                burst_rate_per_s,
                ..
            } => {
                if bursting {
                    burst_rate_per_s
                } else {
                    idle_rate_per_s
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                swing,
                period_s,
            } => base_rate_per_s * (1.0 + swing * (std::f64::consts::TAU * t_s / period_s).sin()),
            ArrivalProcess::FlashCrowd {
                base_rate_per_s,
                spike,
                start_s,
                duration_s,
            } => {
                if t_s >= start_s && t_s < start_s + duration_s {
                    base_rate_per_s * spike
                } else {
                    base_rate_per_s
                }
            }
        }
    }
}

/// A deterministic load trace: how many requests, when they arrive, and the
/// seed everything derives from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Seed of the arrival stream (and, by convention, of seeded payloads).
    pub seed: u64,
}

impl TraceSpec {
    /// A Poisson trace of `requests` arrivals at `rate_per_s`.
    pub fn poisson(rate_per_s: f64, requests: usize, seed: u64) -> Self {
        TraceSpec {
            process: ArrivalProcess::Poisson { rate_per_s },
            requests,
            seed,
        }
    }

    /// A diurnal trace: `requests` arrivals whose rate cycles sinusoidally
    /// around `base_rate_per_s` with relative swing `swing` over `period_s`
    /// seconds.
    pub fn diurnal(
        base_rate_per_s: f64,
        swing: f64,
        period_s: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        TraceSpec {
            process: ArrivalProcess::Diurnal {
                base_rate_per_s,
                swing,
                period_s,
            },
            requests,
            seed,
        }
    }

    /// A flash-crowd trace: baseline `base_rate_per_s` multiplied by `spike`
    /// inside the window `[start_s, start_s + duration_s)`.
    pub fn flash_crowd(
        base_rate_per_s: f64,
        spike: f64,
        start_s: f64,
        duration_s: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        TraceSpec {
            process: ArrivalProcess::FlashCrowd {
                base_rate_per_s,
                spike,
                start_s,
                duration_s,
            },
            requests,
            seed,
        }
    }

    /// Expands the spec into concrete arrival times.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty trace or a process
    /// with non-positive rates.
    pub fn generate(&self) -> Result<Trace> {
        self.process.validate()?;
        if self.requests == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "a trace needs at least one request".to_string(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut arrivals_ns = Vec::with_capacity(self.requests);
        let mut now_ns = 0u64;
        let mut bursting = false;
        for _ in 0..self.requests {
            if let ArrivalProcess::Bursty {
                mean_phase_requests,
                ..
            } = self.process
            {
                if unit_open(&mut rng) < 1.0 / mean_phase_requests {
                    bursting = !bursting;
                }
            }
            let rate = self.process.rate_at(now_ns, bursting);
            let gap_s = -unit_open(&mut rng).ln() / rate;
            // Round the exponential gap to whole nanoseconds and clamp it to
            // at least one: at fleet-scale rates a short gap can round to
            // zero, and downstream consumers rely on arrival timestamps being
            // strictly increasing.
            now_ns = now_ns.saturating_add(((gap_s * 1e9).round() as u64).max(1));
            arrivals_ns.push(now_ns);
        }
        Ok(Trace { arrivals_ns })
    }
}

/// A uniform draw strictly inside (0, 1), safe to take `ln` of.
fn unit_open(rng: &mut ChaCha8Rng) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
}

/// The expanded arrival times of one trace, in non-decreasing order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Arrival time of each request, in virtual nanoseconds from trace start.
    pub arrivals_ns: Vec<u64>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.arrivals_ns.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals_ns.is_empty()
    }

    /// Trace duration: the last arrival time, in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.arrivals_ns.last().copied().unwrap_or(0)
    }

    /// The realized offered load, in requests per second.
    pub fn offered_rate_per_s(&self) -> f64 {
        if self.span_ns() == 0 {
            return 0.0;
        }
        self.arrivals_ns.len() as f64 * 1e9 / self.span_ns() as f64
    }
}

/// Where request payloads come from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PayloadSpec {
    /// Backend-style synthetic inputs: request `i` stages
    /// [`FunctionalBackend::input_for_sample`] of `(base_seed, i)`.
    Seeded {
        /// Base seed the per-request inputs derive from.
        base_seed: u64,
    },
    /// Dataset-backed payloads: quantized images of the synthetic blob
    /// classification task, shaped to the model's input (the image side is
    /// the model's input height, the channel count its input channels).
    Blobs {
        /// Number of blob classes cycled through the requests.
        classes: usize,
        /// Additive noise level of the generated images.
        noise: f64,
        /// Seed of the image stream.
        seed: u64,
    },
}

impl PayloadSpec {
    /// Materialises the first `count` request payloads for `model` at
    /// `act_bits` activation precision.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when blob payloads are requested
    /// for a model with a non-square input, and propagates quantizer or shape
    /// errors from the dataset path.
    pub fn materialize(
        &self,
        model: &ModelGraph,
        act_bits: u8,
        count: usize,
    ) -> Result<Vec<Tensor<i64>>> {
        match *self {
            PayloadSpec::Seeded { base_seed } => Ok((0..count)
                .map(|i| FunctionalBackend::input_for_sample(model, act_bits, base_seed, i))
                .collect()),
            PayloadSpec::Blobs {
                classes,
                noise,
                seed,
            } => {
                let (c, h, w) = model.input_shape();
                if h != w {
                    return Err(ServeError::InvalidConfig {
                        reason: format!("blob payloads need a square model input, got {h}x{w}"),
                    });
                }
                let dataset = SyntheticBlobs::new(h, classes, noise as f32).with_channels(c);
                let samples = dataset.generate(count, seed);
                let batch = Batch::new(&samples);
                let quantizer = Quantizer::calibrate(act_bits, &batch.pixels()).map_err(|e| {
                    ServeError::InvalidConfig {
                        reason: format!("payload quantizer calibration failed: {e}"),
                    }
                })?;
                batch
                    .quantized_inputs(&quantizer)
                    .map_err(|e| ServeError::InvalidConfig {
                        reason: format!("payload staging failed: {e}"),
                    })
            }
        }
    }

    /// Short label used in scenario names (`seeded`, `blobs`).
    pub fn label(&self) -> &'static str {
        match self {
            PayloadSpec::Seeded { .. } => "seeded",
            PayloadSpec::Blobs { .. } => "blobs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn::model::micro_cnn;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = TraceSpec::poisson(5_000.0, 64, 9);
        let a = spec.generate().expect("trace");
        let b = spec.generate().expect("trace");
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.arrivals_ns.windows(2).all(|w| w[0] < w[1]));
        assert!(a.span_ns() > 0);
        assert!(a.offered_rate_per_s() > 0.0);
        // A different seed shifts the arrivals.
        let c = TraceSpec::poisson(5_000.0, 64, 10)
            .generate()
            .expect("trace");
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_is_roughly_met() {
        let spec = TraceSpec::poisson(10_000.0, 2_000, 3);
        let trace = spec.generate().expect("trace");
        let rate = trace.offered_rate_per_s();
        assert!(
            (rate - 10_000.0).abs() < 1_500.0,
            "realized rate {rate} too far from 10k"
        );
    }

    #[test]
    fn bursty_traces_mix_two_rates() {
        let spec = TraceSpec {
            process: ArrivalProcess::Bursty {
                idle_rate_per_s: 100.0,
                burst_rate_per_s: 100_000.0,
                mean_phase_requests: 16.0,
            },
            requests: 512,
            seed: 4,
        };
        let trace = spec.generate().expect("trace");
        assert_eq!(trace, spec.generate().expect("replay"));
        let gaps: Vec<u64> = trace.arrivals_ns.windows(2).map(|w| w[1] - w[0]).collect();
        let short = gaps.iter().filter(|&&g| g < 100_000).count();
        let long = gaps.iter().filter(|&&g| g > 1_000_000).count();
        assert!(short > 0 && long > 0, "short {short}, long {long}");
        assert!(spec.process.label().starts_with("bursty@"));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(TraceSpec::poisson(0.0, 4, 1).generate().is_err());
        assert!(TraceSpec::poisson(100.0, 0, 1).generate().is_err());
        assert!(TraceSpec::poisson(f64::NAN, 4, 1).generate().is_err());
        assert!(TraceSpec::poisson(f64::INFINITY, 4, 1).generate().is_err());
    }

    #[test]
    fn degenerate_bursty_phases_are_rejected() {
        // Regression: `mean_phase_requests <= 1.0` used to be accepted and
        // silently flipped phase on (nearly) every request; non-finite values
        // sailed through the bare `>= 1.0` comparison.
        let bursty = |mean_phase_requests: f64| TraceSpec {
            process: ArrivalProcess::Bursty {
                idle_rate_per_s: 100.0,
                burst_rate_per_s: 10_000.0,
                mean_phase_requests,
            },
            requests: 16,
            seed: 1,
        };
        for bad in [1.0, 0.5, 0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(bursty(bad).generate().is_err(), "accepted {bad}");
        }
        assert!(bursty(1.5).generate().is_ok());
    }

    #[test]
    fn zero_gap_arrivals_are_clamped_to_strictly_increasing() {
        // At an absurd rate every exponential gap rounds to zero nanoseconds;
        // the clamp keeps timestamps strictly increasing anyway.
        let trace = TraceSpec::poisson(1e12, 256, 5).generate().expect("trace");
        assert!(trace.arrivals_ns.windows(2).all(|w| w[0] < w[1]));
        assert!(trace.span_ns() >= 256);
    }

    #[test]
    fn diurnal_traces_cycle_between_peak_and_trough() {
        let spec = TraceSpec::diurnal(50_000.0, 0.9, 1.0, 40_000, 7);
        let trace = spec.generate().expect("trace");
        assert_eq!(trace, spec.generate().expect("replay"));
        assert!(trace.arrivals_ns.windows(2).all(|w| w[0] < w[1]));
        // Quarter-period around the peak (t ≈ period/4) must be denser than
        // around the trough (t ≈ 3·period/4).
        let count_in = |lo_s: f64, hi_s: f64| {
            trace
                .arrivals_ns
                .iter()
                .filter(|&&t| {
                    let t_s = t as f64 * 1e-9;
                    t_s >= lo_s && t_s < hi_s
                })
                .count()
        };
        let peak = count_in(0.15, 0.35);
        let trough = count_in(0.65, 0.85);
        assert!(peak > 2 * trough, "peak {peak} vs trough {trough}");
        assert_eq!(spec.process.label(), "diurnal@50000");
        // A swing of one (or more) would zero the trough rate.
        assert!(TraceSpec::diurnal(1_000.0, 1.0, 1.0, 8, 1)
            .generate()
            .is_err());
        assert!(TraceSpec::diurnal(1_000.0, -0.1, 1.0, 8, 1)
            .generate()
            .is_err());
        assert!(TraceSpec::diurnal(1_000.0, 0.5, 0.0, 8, 1)
            .generate()
            .is_err());
    }

    #[test]
    fn flash_crowds_spike_inside_their_window() {
        let spec = TraceSpec::flash_crowd(2_000.0, 25.0, 1.0, 0.5, 20_000, 13);
        let trace = spec.generate().expect("trace");
        assert_eq!(trace, spec.generate().expect("replay"));
        let in_window = trace
            .arrivals_ns
            .iter()
            .filter(|&&t| {
                let t_s = t as f64 * 1e-9;
                (1.0..1.5).contains(&t_s)
            })
            .count();
        // The 0.5 s window at 25x the base rate should hold the majority of
        // the trace's arrivals.
        assert!(
            in_window > trace.len() / 2,
            "{in_window} of {} in window",
            trace.len()
        );
        assert_eq!(spec.process.label(), "flash@2000x25");
        assert!(TraceSpec::flash_crowd(2_000.0, 0.5, 1.0, 0.5, 8, 1)
            .generate()
            .is_err());
        assert!(TraceSpec::flash_crowd(2_000.0, 25.0, -1.0, 0.5, 8, 1)
            .generate()
            .is_err());
        assert!(TraceSpec::flash_crowd(2_000.0, 25.0, 1.0, 0.0, 8, 1)
            .generate()
            .is_err());
    }

    #[test]
    fn seeded_payloads_match_the_backend_staging() {
        let model = micro_cnn("trace-micro", 4, 0.8, 1);
        let payloads = PayloadSpec::Seeded { base_seed: 7 }
            .materialize(&model, 4, 3)
            .expect("payloads");
        assert_eq!(payloads.len(), 3);
        for (i, payload) in payloads.iter().enumerate() {
            assert_eq!(
                payload.as_slice(),
                FunctionalBackend::input_for_sample(&model, 4, 7, i).as_slice()
            );
        }
    }

    #[test]
    fn blob_payloads_are_model_shaped_and_deterministic() {
        let model = micro_cnn("trace-blobs", 4, 0.8, 2);
        let spec = PayloadSpec::Blobs {
            classes: 4,
            noise: 0.1,
            seed: 11,
        };
        let a = spec.materialize(&model, 4, 5).expect("payloads");
        let b = spec.materialize(&model, 4, 5).expect("payloads");
        assert_eq!(a, b);
        let (c, h, w) = model.input_shape();
        assert!(a.iter().all(|t| t.shape() == [c, h, w]));
        assert_eq!(spec.label(), "blobs");
    }
}
