//! The threaded serving runtime: per-replica request queues with admission
//! control and backpressure, dynamic batching workers, and graceful
//! shutdown.
//!
//! No async runtime exists in this workspace's vendored dependency set, so
//! the server is hand-rolled on `std::thread`, `std::sync::mpsc` channels and
//! condvars: one worker thread per model replica, each owning a
//! [`Mutex`]-protected queue. A worker closes a batch at
//! `max_batch_size` requests or when the oldest queued request has waited
//! `max_queue_delay`, whichever first — the same decision rule the
//! deterministic [simulation](crate::sim) replays on a virtual clock.
//!
//! Wall-clock timing makes the *timing* of this mode nondeterministic by
//! nature; its correctness properties are exact and tested: per-request
//! logits are bit-identical to solo `run_batch` calls regardless of how
//! arrivals interleave into batches, and shutdown drains every admitted
//! request.

use crate::config::{RoutePolicy, ServeConfig};
use crate::error::{Result, ServeError};
use crate::executor::RequestExecutor;
use crate::report::PhaseSample;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tnn::Tensor;

/// The answer to one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The request's server-assigned id (see [`Ticket::id`]).
    pub id: u64,
    /// The replica that executed it.
    pub replica: usize,
    /// Size of the batch that carried it.
    pub batch_size: usize,
    /// Wall-clock time spent waiting in the queue.
    pub queue_wait: Duration,
    /// Wall-clock time from submission to response.
    pub wall_latency: Duration,
    /// The accelerator model's service latency for the whole batch, in
    /// nanoseconds.
    pub service_latency_ns: u64,
    /// The request's logits, when the backend executes data.
    pub logits: Option<Vec<i64>>,
    /// Whether the executed batch matched the reference inference.
    pub bit_exact: Option<bool>,
    /// Wall-clock phase decomposition of this request's time in the server:
    /// queue wait (enqueue → batch close), batch wait (close → dispatch),
    /// execute (dispatch → backend done) and merge (backend done → this
    /// response being handed back).
    pub phases: PhaseSample,
}

/// A pending response: wait on it to receive the request's [`Completion`].
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<Completion>>,
}

impl Ticket {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Returns the backend's error when its batch failed, or
    /// [`ServeError::WorkerLost`] if the worker disappeared before answering.
    pub fn wait(self) -> Result<Completion> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }
}

/// Aggregate counters of a running server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// Requests admitted into a queue.
    pub submitted: u64,
    /// Requests bounced by admission control.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Batches dispatched to the backend.
    pub batches: u64,
}

struct Pending {
    id: u64,
    input: Tensor<i64>,
    enqueued: Instant,
    tx: Sender<Result<Completion>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    closed: bool,
}

struct ReplicaQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    /// Waiting-request count mirrored outside the lock for routing.
    waiting: AtomicUsize,
    /// Samples currently executing, for the least-loaded score.
    in_flight: AtomicUsize,
}

struct Shared {
    config: ServeConfig,
    executor: Arc<dyn RequestExecutor>,
    replicas: Vec<ReplicaQueue>,
    rr_cursor: AtomicUsize,
    next_id: AtomicU64,
    closed: AtomicBool,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
}

/// A running dynamic-batching inference server.
///
/// # Example
///
/// ```
/// use camdnn::FunctionalBackend;
/// use serve::{BackendExecutor, BatchingPolicy, Server, ServeConfig};
/// use std::sync::Arc;
/// use tnn::model::micro_cnn;
///
/// let model = Arc::new(micro_cnn("serve-doc", 4, 0.8, 1));
/// let executor = Arc::new(BackendExecutor::functional(
///     FunctionalBackend::default(),
///     model.clone(),
/// ));
/// let server = Server::start(
///     executor,
///     ServeConfig::default().with_batching(BatchingPolicy::new(4, 200)),
/// )
/// .expect("start");
/// let ticket = server
///     .submit(FunctionalBackend::input_for(&model, 4, 0))
///     .expect("submit");
/// let completion = ticket.wait().expect("completion");
/// assert_eq!(completion.logits.as_ref().map(Vec::len), Some(10));
/// server.shutdown().expect("shutdown");
/// ```
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("backend", &self.shared.executor.name())
            .field("config", &self.shared.config)
            .finish()
    }
}

impl Server {
    /// Validates `config` and spawns one worker thread per replica.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a configuration that fails
    /// [`ServeConfig::validate`].
    pub fn start(executor: Arc<dyn RequestExecutor>, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let shared = Arc::new(Shared {
            config,
            executor,
            replicas: (0..config.replicas)
                .map(|_| ReplicaQueue {
                    state: Mutex::new(QueueState {
                        queue: VecDeque::new(),
                        closed: false,
                    }),
                    cond: Condvar::new(),
                    waiting: AtomicUsize::new(0),
                    in_flight: AtomicUsize::new(0),
                })
                .collect(),
            rr_cursor: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let workers = (0..config.replicas)
            .map(|replica| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, replica))
            })
            .collect();
        Ok(Server {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Aggregate request/batch counters so far.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            submitted: self.shared.submitted.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            batches: self.shared.batches.load(Ordering::SeqCst),
        }
    }

    /// Submits a request, *blocking* while the routed queue is at capacity —
    /// the backpressure path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn submit(&self, input: Tensor<i64>) -> Result<Ticket> {
        self.admit(input, true)
    }

    /// Submits a request, *rejecting* immediately when the routed queue is at
    /// capacity — the admission-control path.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::QueueFull`] when the routed replica's queue is
    /// full, or [`ServeError::ShuttingDown`] once shutdown has begun.
    pub fn try_submit(&self, input: Tensor<i64>) -> Result<Ticket> {
        self.admit(input, false)
    }

    fn admit(&self, input: Tensor<i64>, block: bool) -> Result<Ticket> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let replica = self.route();
        let slot = &self.shared.replicas[replica];
        let mut state = slot.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() < self.shared.config.queue_capacity {
                break;
            }
            if !block {
                self.shared.rejected.fetch_add(1, Ordering::SeqCst);
                return Err(ServeError::QueueFull {
                    replica,
                    capacity: self.shared.config.queue_capacity,
                });
            }
            state = slot.cond.wait(state).expect("queue poisoned");
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = channel();
        state.queue.push_back(Pending {
            id,
            input,
            enqueued: Instant::now(),
            tx,
        });
        slot.waiting.store(state.queue.len(), Ordering::SeqCst);
        self.shared.submitted.fetch_add(1, Ordering::SeqCst);
        slot.cond.notify_all();
        Ok(Ticket { id, rx })
    }

    fn route(&self) -> usize {
        let replicas = &self.shared.replicas;
        match self.shared.config.routing {
            RoutePolicy::RoundRobin => {
                self.shared.rr_cursor.fetch_add(1, Ordering::SeqCst) % replicas.len()
            }
            RoutePolicy::LeastLoaded => replicas
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| {
                    (
                        r.waiting.load(Ordering::SeqCst) + r.in_flight.load(Ordering::SeqCst),
                        *i,
                    )
                })
                .map(|(i, _)| i)
                .expect("at least one replica"),
            RoutePolicy::JoinShortestQueue => replicas
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.waiting.load(Ordering::SeqCst), *i))
                .map(|(i, _)| i)
                .expect("at least one replica"),
        }
    }

    /// Begins a graceful shutdown: no new requests are admitted, every queued
    /// request is still executed (remaining batches flush without waiting out
    /// the batching delay), and all worker threads are joined.
    ///
    /// Idempotent — later calls are no-ops.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] if a worker thread panicked.
    pub fn shutdown(&self) -> Result<()> {
        self.shared.closed.store(true, Ordering::SeqCst);
        for slot in &self.shared.replicas {
            let mut state = slot.state.lock().expect("queue poisoned");
            state.closed = true;
            slot.cond.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers poisoned"));
        for handle in workers {
            handle.join().map_err(|_| ServeError::WorkerLost)?;
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// A [`Duration`] as saturated whole nanoseconds.
fn duration_ns(duration: Duration) -> u64 {
    duration.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One replica's worker: form a batch (size- or deadline-closed), execute it,
/// answer its members; on shutdown, keep flushing until the queue is empty.
fn worker_loop(shared: &Shared, replica: usize) {
    let slot = &shared.replicas[replica];
    let max_batch = shared.config.batching.max_batch_size;
    let delay = Duration::from_nanos(shared.config.batching.max_queue_delay_ns);
    loop {
        let batch: Vec<Pending> = {
            let mut state = slot.state.lock().expect("queue poisoned");
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.closed {
                    return; // drained
                }
                state = slot.cond.wait(state).expect("queue poisoned");
            }
            // The batching window: the front request is never popped by
            // anyone else, so its deadline is stable across waits.
            let deadline = state.queue.front().expect("non-empty").enqueued + delay;
            while state.queue.len() < max_batch && !state.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _) = slot
                    .cond
                    .wait_timeout(state, deadline - now)
                    .expect("queue poisoned");
                state = next;
            }
            let size = state.queue.len().min(max_batch);
            let batch: Vec<Pending> = state.queue.drain(..size).collect();
            slot.waiting.store(state.queue.len(), Ordering::SeqCst);
            slot.in_flight.store(batch.len(), Ordering::SeqCst);
            // Capacity freed: wake submitters blocked on backpressure.
            slot.cond.notify_all();
            batch
        };
        // The moment the batching window decided this batch; input cloning
        // and dispatch bookkeeping after it count as batch wait.
        let closed = Instant::now();
        let inputs: Vec<Tensor<i64>> = batch.iter().map(|p| p.input.clone()).collect();
        let dispatched = Instant::now();
        let executed = {
            let _span = telemetry::span("serve.execute");
            shared.executor.execute(&inputs)
        };
        match executed {
            Ok(executed) => {
                let finished = Instant::now();
                let _merge_span = telemetry::span("serve.merge");
                shared.batches.fetch_add(1, Ordering::SeqCst);
                for (slot_index, pending) in batch.into_iter().enumerate() {
                    let phases = PhaseSample {
                        queue_wait_ns: duration_ns(closed.duration_since(pending.enqueued)),
                        batch_wait_ns: duration_ns(dispatched.duration_since(closed)),
                        execute_ns: duration_ns(finished.duration_since(dispatched)),
                        merge_ns: duration_ns(finished.elapsed()),
                    };
                    if telemetry::enabled() {
                        telemetry::observe_timing("serve.wall.queue_wait", phases.queue_wait_ns);
                        telemetry::observe_timing("serve.wall.batch_wait", phases.batch_wait_ns);
                        telemetry::observe_timing("serve.wall.execute", phases.execute_ns);
                        telemetry::observe_timing("serve.wall.merge", phases.merge_ns);
                    }
                    let completion = Completion {
                        id: pending.id,
                        replica,
                        batch_size: inputs.len(),
                        queue_wait: dispatched.duration_since(pending.enqueued),
                        wall_latency: pending.enqueued.elapsed(),
                        service_latency_ns: executed.latency_ns,
                        logits: executed.logits.as_ref().map(|l| l[slot_index].clone()),
                        bit_exact: executed.bit_exact,
                        phases,
                    };
                    shared.completed.fetch_add(1, Ordering::SeqCst);
                    // A caller that dropped its ticket is not an error.
                    let _ = pending.tx.send(Ok(completion));
                }
            }
            Err(err) => {
                for pending in batch {
                    let _ = pending.tx.send(Err(err.clone()));
                }
            }
        }
        slot.in_flight.store(0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchingPolicy;
    use crate::executor::ExecutedBatch;

    /// Echoes each input's first element as its "logit" after an optional
    /// sleep, so tests can verify request/response pairing under batching.
    struct EchoExecutor {
        sleep: Duration,
    }

    impl RequestExecutor for EchoExecutor {
        fn name(&self) -> String {
            "echo".to_string()
        }

        fn execute(&self, inputs: &[Tensor<i64>]) -> Result<ExecutedBatch> {
            std::thread::sleep(self.sleep);
            Ok(ExecutedBatch {
                latency_ns: 1_000,
                logits: Some(inputs.iter().map(|t| vec![t.as_slice()[0]]).collect()),
                bit_exact: None,
            })
        }
    }

    fn payload(value: i64) -> Tensor<i64> {
        Tensor::from_vec(vec![1, 1, 1], vec![value]).expect("payload")
    }

    fn echo_server(config: ServeConfig, sleep: Duration) -> Server {
        Server::start(Arc::new(EchoExecutor { sleep }), config).expect("start")
    }

    #[test]
    fn responses_pair_with_their_requests() {
        let server = echo_server(
            ServeConfig::default()
                .with_replicas(2)
                .with_batching(BatchingPolicy::new(4, 100)),
            Duration::from_millis(1),
        );
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| server.submit(payload(i)).expect("submit"))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let completion = ticket.wait().expect("completion");
            assert_eq!(completion.logits, Some(vec![i as i64]));
            assert!(completion.batch_size >= 1 && completion.batch_size <= 4);
            assert!(completion.replica < 2);
        }
        let counters = server.counters();
        assert_eq!(counters.submitted, 16);
        assert_eq!(counters.completed, 16);
        assert!(counters.batches >= 4);
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn graceful_shutdown_drains_every_request() {
        // A slow executor so most requests are still queued when shutdown
        // begins; every ticket must still get its answer.
        let server = echo_server(
            ServeConfig::default().with_batching(BatchingPolicy::new(2, 50_000)),
            Duration::from_millis(5),
        );
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| server.submit(payload(i)).expect("submit"))
            .collect();
        server.shutdown().expect("shutdown");
        for (i, ticket) in tickets.into_iter().enumerate() {
            let completion = ticket.wait().expect("completion after shutdown");
            assert_eq!(completion.logits, Some(vec![i as i64]));
        }
        assert_eq!(server.counters().completed, 10);
        // New submissions are refused.
        let err = server.submit(payload(99)).expect_err("closed");
        assert!(matches!(err, ServeError::ShuttingDown));
        // Shutdown is idempotent.
        server.shutdown().expect("second shutdown");
    }

    #[test]
    fn admission_control_rejects_when_full() {
        // Queue capacity 2 on one busy replica: the executor holds the worker
        // long enough for try_submit to hit a full queue.
        let server = echo_server(
            ServeConfig::default()
                .with_batching(BatchingPolicy::single())
                .with_queue_capacity(2),
            Duration::from_millis(50),
        );
        let mut tickets = Vec::new();
        let mut rejections = 0;
        for i in 0..12 {
            match server.try_submit(payload(i)) {
                Ok(ticket) => tickets.push((i, ticket)),
                Err(ServeError::QueueFull { replica, capacity }) => {
                    assert_eq!((replica, capacity), (0, 2));
                    rejections += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejections > 0, "flooding a capacity-2 queue must reject");
        assert_eq!(server.counters().rejected, rejections);
        for (i, ticket) in tickets {
            assert_eq!(ticket.wait().expect("completion").logits, Some(vec![i]));
        }
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn blocking_submit_applies_backpressure_instead_of_rejecting() {
        let server = Arc::new(echo_server(
            ServeConfig::default()
                .with_batching(BatchingPolicy::single())
                .with_queue_capacity(1),
            Duration::from_millis(2),
        ));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    server
                        .submit(payload(i))
                        .expect("submit")
                        .wait()
                        .expect("wait")
                })
            })
            .collect();
        let mut seen: Vec<i64> = handles
            .into_iter()
            .map(|h| h.join().expect("join").logits.expect("logits")[0])
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<i64>>());
        assert_eq!(server.counters().rejected, 0);
        server.shutdown().expect("shutdown");
    }

    #[test]
    fn backend_errors_reach_every_batch_member() {
        struct FailingExecutor;
        impl RequestExecutor for FailingExecutor {
            fn name(&self) -> String {
                "failing".to_string()
            }
            fn execute(&self, _inputs: &[Tensor<i64>]) -> Result<ExecutedBatch> {
                Err(ServeError::Backend(apc::ApcError::InvalidArgument {
                    reason: "boom".to_string(),
                }))
            }
        }
        let server = Server::start(
            Arc::new(FailingExecutor),
            ServeConfig::default().with_batching(BatchingPolicy::new(4, 100)),
        )
        .expect("start");
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| server.submit(payload(i)).expect("submit"))
            .collect();
        for ticket in tickets {
            let err = ticket.wait().expect_err("backend failure");
            assert!(err.to_string().contains("boom"));
        }
        server.shutdown().expect("shutdown");
    }
}
