//! Accelerator-level model of the RTM-AP architecture (Fig. 2a–c of the paper).
//!
//! The accelerator is a hierarchy of banks, tiles and associative processors (APs),
//! with buffers and an interconnection network. This crate maps compiled layers
//! ([`apc::CompiledLayer`]) onto that hierarchy and produces per-layer and
//! end-to-end reports of energy (split into DFG, accumulation, peripherals and data
//! movement — the components of Fig. 4), latency, array counts, data movement and
//! write endurance.
//!
//! The [`NetworkSimulator`] here is the *analytic* evaluation path: it prices a
//! compiled network with the closed-form [`ap::CostModel`] and scales to
//! ImageNet. Its execution counterpart is the `functional` backend of the
//! `camdnn` crate, which runs the same compiled programs bit-serially on the
//! word-parallel [`ap::ApEngine`] over the same [`ArchConfig`] geometry and
//! technology — use that path when counters must come from execution rather
//! than a model.
//!
//! # Example
//!
//! ```
//! use accel::{AcceleratorModel, ArchConfig};
//! use apc::{CompilerOptions, LayerCompiler};
//! use tnn::model::vgg9;
//!
//! let model = vgg9(0.85, 1);
//! let compiler = LayerCompiler::new(CompilerOptions::default());
//! let compiled = compiler.compile(&model.conv_like_layers()[0]).expect("compile");
//! let accelerator = AcceleratorModel::new(ArchConfig::default());
//! let report = accelerator.simulate_layer(&compiled);
//! assert!(report.energy.total_fj() > 0.0);
//! assert!(report.latency.total_ns() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod report;

pub use config::ArchConfig;
pub use engine::{AcceleratorModel, NetworkSimulator};
pub use report::{EnergyBreakdown, LatencyBreakdown, LayerReport, NetworkReport};
