use apc::layout::CamGeometry;
use cam::CamTechnology;
use rtm::RtmTechnology;
use serde::{Deserialize, Serialize};

/// Configuration of the RTM-AP accelerator (geometry, hierarchy and the
/// interconnect/buffer figures of merit from §V of the paper).
///
/// # Example
///
/// ```
/// use accel::ArchConfig;
///
/// let config = ArchConfig::default();
/// assert_eq!(config.geometry.rows, 256);
/// assert!((config.interconnect_pj_per_bit - 1.0).abs() < f64::EPSILON);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Geometry of each CAM array (rows, columns, domains per cell).
    pub geometry: CamGeometry,
    /// Timing/energy figures of the RTM-TCAM design.
    pub cam_tech: CamTechnology,
    /// Racetrack device figures (shift costs, endurance).
    pub rtm_tech: RtmTechnology,
    /// Number of APs per tile.
    pub aps_per_tile: usize,
    /// Number of tiles per bank.
    pub tiles_per_bank: usize,
    /// Number of banks.
    pub banks: usize,
    /// Energy of moving one bit through the tile/bank/global interconnect, in
    /// picojoules (the paper uses a conservative 1 pJ/bit).
    pub interconnect_pj_per_bit: f64,
    /// Energy of moving one bit between adjacent APs inside a tile (the short hops of
    /// the accumulation-phase adder tree), in picojoules.
    pub intra_tile_pj_per_bit: f64,
    /// Interconnect bandwidth per link, in bits per nanosecond.
    pub interconnect_bits_per_ns: f64,
    /// Width (bits) at which partial sums are transferred between APs during the
    /// accumulation phase. `None` uses the full accumulator width; the paper's
    /// "optimizing the bitwidth of partial sums" step corresponds to a narrower
    /// transfer width.
    pub psum_transfer_bits: Option<u8>,
    /// Fraction of the output feature map that must cross an array boundary when it
    /// is redistributed as the next layer's input (halo exchange). The bulk of the
    /// feature map is computed and stored in place (the paper's data-centric
    /// mapping), so only boundary regions travel over the interconnect.
    pub ofm_redistribution_fraction: f64,
    /// Static/controller energy per executed instruction (instruction cache, decoder),
    /// in femtojoules; counted once per AP executing the instruction.
    pub instruction_overhead_fj: f64,
    /// Maximum number of APs used to parallelise the input-channel dimension of one
    /// layer. Channels beyond this limit stay resident in the same AP (stored in
    /// additional patch column sets) and are processed sequentially, which bounds the
    /// partial-sum traffic of the accumulation phase.
    pub max_channel_groups: usize,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig {
            geometry: CamGeometry::default(),
            cam_tech: CamTechnology::default(),
            rtm_tech: RtmTechnology::default(),
            aps_per_tile: 4,
            tiles_per_bank: 4,
            banks: 4,
            interconnect_pj_per_bit: 1.0,
            intra_tile_pj_per_bit: 0.1,
            interconnect_bits_per_ns: 256.0,
            psum_transfer_bits: Some(8),
            ofm_redistribution_fraction: 0.25,
            instruction_overhead_fj: 10.0,
            max_channel_groups: 8,
        }
    }
}

impl ArchConfig {
    /// Creates the default configuration used in the paper's evaluation (256×256
    /// arrays, 64-domain cells, 1 pJ/bit interconnect).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of APs in the fabric.
    pub fn total_aps(&self) -> usize {
        self.banks * self.tiles_per_bank * self.aps_per_tile
    }

    /// Returns a copy with a different CAM geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CamGeometry) -> Self {
        self.geometry = geometry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let config = ArchConfig::default();
        assert_eq!(config.geometry.rows, 256);
        assert_eq!(config.geometry.cols, 256);
        assert_eq!(config.geometry.domains, 64);
        assert!((config.interconnect_pj_per_bit - 1.0).abs() < 1e-12);
        assert!(config.cam_tech.search_latency_ns <= 0.2);
    }

    #[test]
    fn hierarchy_counts_multiply() {
        let config = ArchConfig {
            aps_per_tile: 2,
            tiles_per_bank: 3,
            banks: 5,
            ..Default::default()
        };
        assert_eq!(config.total_aps(), 30);
    }

    #[test]
    fn with_geometry_replaces_only_geometry() {
        let geometry = CamGeometry {
            rows: 128,
            cols: 128,
            domains: 32,
        };
        let config = ArchConfig::default().with_geometry(geometry);
        assert_eq!(config.geometry, geometry);
        assert_eq!(config.banks, ArchConfig::default().banks);
    }

    #[test]
    fn serde_round_trip() {
        let config = ArchConfig::default();
        let json = serde_json::to_string(&config).expect("serialize");
        let back: ArchConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(config, back);
    }
}
