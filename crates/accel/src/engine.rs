use crate::{ArchConfig, EnergyBreakdown, LatencyBreakdown, LayerReport, NetworkReport};
use apc::{CompiledLayer, CompilerOptions, LayerCompiler};
use rtm::endurance::{column_rewrite_interval_ns, EnduranceReport};
use tnn::model::ModelGraph;

/// The analytical performance/energy model of the RTM-AP accelerator.
///
/// One [`CompiledLayer`] is mapped onto `row_groups × channel_groups` APs: output
/// positions spread over row groups, input channels over channel groups, and output
/// channels over sequential tiles inside each AP. The channel-wise DFG phase runs the
/// compiled slice programs; the accumulation phase merges the per-group partial sums
/// through an adder tree and fuses the activation function; the interconnect carries
/// the partial sums and the boundary regions of the output feature map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorModel {
    config: ArchConfig,
}

impl AcceleratorModel {
    /// Creates a model with the given configuration.
    pub fn new(config: ArchConfig) -> Self {
        AcceleratorModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Simulates one compiled layer and returns its report.
    pub fn simulate_layer(&self, layer: &CompiledLayer) -> LayerReport {
        let cfg = &self.config;
        let tech = &cfg.cam_tech;
        let layout = &layer.layout;
        let stats = &layer.stats;
        let positions = layer.output_positions as f64;
        let rows = positions; // active rows across all row groups
                              // Channel groups beyond the configured limit stay resident in the same AP
                              // (additional patch column sets) and run sequentially, so only
                              // `effective_channel_groups` APs exchange partial sums.
        let effective_channel_groups = layout
            .channel_groups
            .clamp(1, cfg.max_channel_groups.max(1));
        let channel_groups = effective_channel_groups as f64;
        let row_groups = layout.row_groups.max(1) as f64;

        // --- Channel-wise DFG phase -------------------------------------------------
        let dfg_cycles = stats.total_cycles.saturating_sub(stats.accumulation_cycles) as f64;
        let dfg_searched = stats
            .searched_bits_per_row
            .saturating_sub(stats.accumulation_searched_bits_per_row)
            as f64;
        let dfg_written = stats
            .written_bits_per_row
            .saturating_sub(stats.accumulation_written_bits_per_row)
            as f64;
        let dfg_energy = dfg_searched * rows * tech.search_energy_per_bit_fj
            + dfg_written * rows * tech.write_energy_per_bit_fj;
        // Each slice's cycles execute in every row-group copy of its channel group.
        let controller_energy = stats.total_cycles as f64
            * row_groups
            * (tech.controller_energy_per_cycle_fj + cfg.instruction_overhead_fj);
        // Channel groups work in parallel; output tiles and resident channels are
        // sequential inside one AP (already part of the per-slice totals).
        let dfg_latency = dfg_cycles / channel_groups * tech.search_latency_ns;

        // --- Local accumulation (inside each AP) ------------------------------------
        let local_acc_energy = stats.accumulation_searched_bits_per_row as f64
            * rows
            * tech.search_energy_per_bit_fj
            + stats.accumulation_written_bits_per_row as f64 * rows * tech.write_energy_per_bit_fj;
        let local_acc_latency =
            stats.accumulation_cycles as f64 / channel_groups * tech.search_latency_ns;

        // --- Cross-AP accumulation (adder tree over channel groups) -----------------
        let merges = (effective_channel_groups.saturating_sub(1)) as f64;
        let final_bits = layout.final_acc_bits as f64;
        // One in-place addition of `final_bits` per output channel per merge, SIMD
        // over the rows: 4 passes (8 cycles) per bit, 3 key bits searched and ~1 bit
        // written per row per pass.
        let merge_add_cycles = merges * layer.cout as f64 * final_bits * 8.0;
        let merge_add_energy = merges
            * layer.cout as f64
            * final_bits
            * 4.0
            * rows
            * (3.0 * tech.search_energy_per_bit_fj + tech.write_energy_per_bit_fj);
        // The adder tree halves the number of partial sums per level, so the latency
        // is the per-level work times the tree depth, not the total merge count.
        let tree_depth = (effective_channel_groups as f64).log2().ceil().max(0.0);
        let merge_latency = if merges > 0.0 {
            layer.cout as f64 * final_bits * 8.0 * tree_depth * tech.search_latency_ns
        } else {
            0.0
        };
        // Activation fusion and requantisation of the finished outputs.
        let requant_cycles = layer.cout as f64 * 2.0 * layout.act_bits as f64;
        let requant_energy =
            layer.cout as f64 * rows * layout.act_bits as f64 * tech.write_energy_per_bit_fj;
        let accumulation_energy = local_acc_energy + merge_add_energy + requant_energy;
        let accumulation_latency =
            local_acc_latency + merge_latency + requant_cycles * tech.search_latency_ns;
        let _ = merge_add_cycles;

        // --- Data movement -----------------------------------------------------------
        let psum_bits = cfg.psum_transfer_bits.map(f64::from).unwrap_or(final_bits);
        let psum_transfer_bits = merges * layer.cout as f64 * rows * psum_bits;
        let ofm_bits = layer.cout as f64 * rows * layout.act_bits as f64;
        let redistribution_bits = ofm_bits * cfg.ofm_redistribution_fraction;
        let interconnect_bits = psum_transfer_bits + redistribution_bits;
        // Partial sums hop between adjacent APs of the same tile (short wires);
        // only the redistributed OFM boundary travels over the tile/bank/global
        // interconnect at the conservative 1 pJ/bit.
        let data_movement_energy = (psum_transfer_bits * cfg.intra_tile_pj_per_bit
            + redistribution_bits * cfg.interconnect_pj_per_bit)
            * 1e3; // pJ -> fJ
        let parallel_links = (channel_groups / 2.0).max(1.0) * row_groups;
        let data_movement_latency =
            interconnect_bits / cfg.interconnect_bits_per_ns / parallel_links;

        // --- Peripherals --------------------------------------------------------------
        // Controller/instruction cache plus the sense-amplifier energy of staging the
        // input activations and reading out the finished outputs.
        let staging_bits = stats.io_bits_per_row as f64 * rows + ofm_bits;
        let peripherals_energy = controller_energy + staging_bits * tech.read_energy_per_bit_fj;

        LayerReport {
            name: layer.name.clone(),
            energy: EnergyBreakdown {
                dfg_fj: dfg_energy,
                accumulation_fj: accumulation_energy,
                peripherals_fj: peripherals_energy,
                data_movement_fj: data_movement_energy,
            },
            latency: LatencyBreakdown {
                dfg_ns: dfg_latency,
                accumulation_ns: accumulation_latency,
                data_movement_ns: data_movement_latency,
            },
            arrays: layout.row_groups,
            parallel_aps: layout.parallel_aps(),
            adds_subs: stats.counted_adds_subs,
            row_utilization: layout.row_utilization(),
            interconnect_bits: interconnect_bits as u64,
        }
    }

    /// Write-endurance estimate under the execution model of §V-C: at most two
    /// columns are written per operation, execution is spread over the array columns,
    /// and each search/write pass takes one cycle.
    pub fn endurance(&self, total_latency_ns: f64, total_cycles: u64) -> EnduranceReport {
        let op_latency = if total_cycles == 0 {
            self.config.cam_tech.pass_latency_ns()
        } else {
            (total_latency_ns / total_cycles as f64).max(self.config.cam_tech.search_latency_ns)
        };
        let interval = column_rewrite_interval_ns(self.config.geometry.cols, 2.0, op_latency * 8.0);
        EnduranceReport::from_write_interval(&self.config.rtm_tech, interval)
    }
}

/// End-to-end simulation: compiles every weighted layer of a model and runs the
/// accelerator model over it.
///
/// # Example
///
/// ```
/// use accel::{ArchConfig, NetworkSimulator};
/// use apc::CompilerOptions;
/// use tnn::model::vgg9;
///
/// let simulator = NetworkSimulator::new(ArchConfig::default(), CompilerOptions::default());
/// let report = simulator.simulate(&vgg9(0.9, 1)).expect("simulate");
/// assert!(report.energy_uj() > 0.0);
/// assert_eq!(report.arrays(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSimulator {
    arch: ArchConfig,
    compiler: CompilerOptions,
}

impl NetworkSimulator {
    /// Creates a simulator from an architecture configuration and compiler options.
    pub fn new(arch: ArchConfig, compiler: CompilerOptions) -> Self {
        NetworkSimulator { arch, compiler }
    }

    /// The architecture configuration.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The compiler options.
    pub fn compiler_options(&self) -> &CompilerOptions {
        &self.compiler
    }

    /// Compiles and simulates every weighted layer of `model`.
    ///
    /// Layer compilation — the hot path — runs in parallel through
    /// [`LayerCompiler::compile_model`]; the per-layer accelerator reports are
    /// then derived in network order, so the result is deterministic and
    /// independent of the rayon worker count.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (for example a layer that cannot be placed on
    /// the configured geometry).
    pub fn simulate(&self, model: &ModelGraph) -> apc::Result<NetworkReport> {
        let compiler = LayerCompiler::new(self.compiler);
        let compiled = compiler.compile_model(model)?;
        let layers: Vec<&CompiledLayer> = compiled.iter().collect();
        Ok(self.report_from(model.name(), &layers))
    }

    /// Simulates a model whose layers were already compiled — typically through
    /// a shared [`apc::CompileCache`] so sweeps over accelerator configurations
    /// do not recompile identical layers per scenario.
    ///
    /// `compiled` must hold the model's weighted layers in network order,
    /// compiled with this simulator's [`compiler_options`](Self::compiler_options);
    /// the result is then byte-identical to [`simulate`](Self::simulate).
    pub fn simulate_precompiled(
        &self,
        model: &ModelGraph,
        compiled: &[std::sync::Arc<CompiledLayer>],
    ) -> NetworkReport {
        let layers: Vec<&CompiledLayer> = compiled.iter().map(|c| c.as_ref()).collect();
        self.report_from(model.name(), &layers)
    }

    /// Shared report assembly: both [`simulate`](Self::simulate) and
    /// [`simulate_precompiled`](Self::simulate_precompiled) fold the per-layer
    /// reports in network order, so the two paths are bit-identical.
    fn report_from(&self, name: &str, compiled: &[&CompiledLayer]) -> NetworkReport {
        let accelerator = AcceleratorModel::new(self.arch);
        let total_cycles: u64 = compiled.iter().map(|c| c.stats.total_cycles).sum();
        let layers: Vec<LayerReport> = compiled
            .iter()
            .map(|c| accelerator.simulate_layer(c))
            .collect();
        let total_latency: f64 = layers.iter().map(|l| l.latency.total_ns()).sum();
        let endurance = accelerator.endurance(total_latency, total_cycles);
        NetworkReport {
            name: name.to_string(),
            act_bits: self.compiler.act_bits,
            cse: self.compiler.enable_cse,
            layers,
            endurance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn::model::vgg9;

    fn simulate(act_bits: u8, cse: bool, sparsity: f64) -> NetworkReport {
        let options = CompilerOptions {
            act_bits,
            enable_cse: cse,
            ..CompilerOptions::default()
        };
        NetworkSimulator::new(ArchConfig::default(), options)
            .simulate(&vgg9(sparsity, 2))
            .expect("simulate")
    }

    #[test]
    fn vgg9_occupies_four_arrays() {
        let report = simulate(4, true, 0.9);
        assert_eq!(report.arrays(), 4);
        assert_eq!(report.layers.len(), 9);
        assert!(report.energy_uj() > 0.0);
        assert!(report.latency_ms() > 0.0);
    }

    #[test]
    fn cse_improves_energy_and_latency() {
        let with_cse = simulate(4, true, 0.9);
        let without = simulate(4, false, 0.9);
        assert!(with_cse.energy_uj() < without.energy_uj());
        assert!(with_cse.latency_ms() <= without.latency_ms() * 1.001);
        assert!(with_cse.adds_subs_k() < without.adds_subs_k());
    }

    #[test]
    fn four_bit_activations_beat_eight_bit() {
        let four = simulate(4, true, 0.9);
        let eight = simulate(8, true, 0.9);
        assert!(four.energy_uj() < eight.energy_uj());
        assert!(four.latency_ms() < eight.latency_ms());
    }

    #[test]
    fn higher_sparsity_means_fewer_adds_and_less_energy() {
        let sparse = simulate(4, true, 0.9);
        let dense = simulate(4, true, 0.85);
        assert!(sparse.adds_subs_k() < dense.adds_subs_k());
        assert!(sparse.energy_uj() < dense.energy_uj());
    }

    #[test]
    fn data_movement_is_a_minority_share() {
        // The paper reports 3% for ResNet-18; our accounting is more conservative
        // (see EXPERIMENTS.md) but data movement must stay well below the 41%
        // interconnect share of the crossbar baseline.
        let report = simulate(4, true, 0.9);
        let share = report.data_movement_share();
        assert!(share < 0.41, "data movement share {share}");
        assert!(share > 0.0);
    }

    #[test]
    fn endurance_exceeds_a_decade() {
        let report = simulate(4, true, 0.9);
        assert!(
            report.endurance.lifetime_years > 10.0,
            "lifetime {}",
            report.endurance.lifetime_years
        );
    }

    #[test]
    fn deep_small_layers_have_lower_row_utilization() {
        let report = simulate(4, true, 0.9);
        let first = &report.layers[0];
        let late_conv = &report.layers[5];
        assert!(late_conv.row_utilization <= first.row_utilization);
    }
}
