use rtm::endurance::EnduranceReport;
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Per-component energy of one layer (or network), in femtojoules.
///
/// The components match Fig. 4 of the paper: the channel-wise DFG phase, the
/// accumulation phase (local and cross-AP), peripherals (controller, instruction
/// cache, buffers) and data movement over the interconnect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy of the channel-wise DFG phase (searches and writes of the add/sub LUT
    /// passes), in femtojoules.
    pub dfg_fj: f64,
    /// Energy of the accumulation phase (partial-sum accumulation in the APs plus the
    /// cross-AP adder tree), in femtojoules.
    pub accumulation_fj: f64,
    /// Energy of peripherals: controller, instruction cache, sense amplifiers used
    /// for data staging, in femtojoules.
    pub peripherals_fj: f64,
    /// Energy of data movement over the tile/bank/global interconnect, in
    /// femtojoules.
    pub data_movement_fj: f64,
}

impl EnergyBreakdown {
    /// Total energy in femtojoules.
    pub fn total_fj(&self) -> f64 {
        self.dfg_fj + self.accumulation_fj + self.peripherals_fj + self.data_movement_fj
    }

    /// Total energy in microjoules (the unit of Table II).
    pub fn total_uj(&self) -> f64 {
        self.total_fj() * 1e-9
    }

    /// Fraction of the total energy spent on interconnect data movement.
    pub fn data_movement_share(&self) -> f64 {
        let total = self.total_fj();
        if total <= 0.0 {
            0.0
        } else {
            self.data_movement_fj / total
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            dfg_fj: self.dfg_fj + rhs.dfg_fj,
            accumulation_fj: self.accumulation_fj + rhs.accumulation_fj,
            peripherals_fj: self.peripherals_fj + rhs.peripherals_fj,
            data_movement_fj: self.data_movement_fj + rhs.data_movement_fj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

/// Per-component latency of one layer (or network), in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Latency of the channel-wise DFG phase, in nanoseconds.
    pub dfg_ns: f64,
    /// Latency of the accumulation phase, in nanoseconds.
    pub accumulation_ns: f64,
    /// Latency of interconnect transfers that cannot be overlapped, in nanoseconds.
    pub data_movement_ns: f64,
}

impl LatencyBreakdown {
    /// Total latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.dfg_ns + self.accumulation_ns + self.data_movement_ns
    }

    /// Total latency in milliseconds (the unit of Table II).
    pub fn total_ms(&self) -> f64 {
        self.total_ns() * 1e-6
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;

    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            dfg_ns: self.dfg_ns + rhs.dfg_ns,
            accumulation_ns: self.accumulation_ns + rhs.accumulation_ns,
            data_movement_ns: self.data_movement_ns + rhs.data_movement_ns,
        }
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

/// The simulation result of one layer on the RTM-AP accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Latency breakdown.
    pub latency: LatencyBreakdown,
    /// Number of 256×256 arrays (row groups) occupied in parallel.
    pub arrays: usize,
    /// Number of APs active (row groups × channel groups).
    pub parallel_aps: usize,
    /// Add/sub instruction count (the paper's `#Adds/Subs` metric).
    pub adds_subs: u64,
    /// Fraction of CAM rows that hold useful output positions.
    pub row_utilization: f64,
    /// Bits moved over the interconnect.
    pub interconnect_bits: u64,
}

/// The simulation result of a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Network name.
    pub name: String,
    /// Activation precision in bits.
    pub act_bits: u8,
    /// Whether CSE was enabled.
    pub cse: bool,
    /// Per-layer results in network order.
    pub layers: Vec<LayerReport>,
    /// Write-endurance estimate for the hottest CAM column.
    pub endurance: EnduranceReport,
}

impl NetworkReport {
    /// Total energy of one inference, in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.energy().total_uj()
    }

    /// Total latency of one inference, in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency().total_ms()
    }

    /// Summed energy breakdown over all layers.
    pub fn energy(&self) -> EnergyBreakdown {
        self.layers
            .iter()
            .fold(EnergyBreakdown::default(), |acc, l| acc + l.energy)
    }

    /// Summed latency breakdown over all layers.
    pub fn latency(&self) -> LatencyBreakdown {
        self.layers
            .iter()
            .fold(LatencyBreakdown::default(), |acc, l| acc + l.latency)
    }

    /// The `#Arrays` metric of Table II: the largest number of arrays any layer needs
    /// in parallel along the output-position dimension.
    pub fn arrays(&self) -> usize {
        self.layers.iter().map(|l| l.arrays).max().unwrap_or(0)
    }

    /// Total add/sub instructions (in thousands, as reported in Table II).
    pub fn adds_subs_k(&self) -> f64 {
        self.layers.iter().map(|l| l.adds_subs).sum::<u64>() as f64 / 1e3
    }

    /// Fraction of the total energy spent on interconnect data movement (§V-C).
    pub fn data_movement_share(&self) -> f64 {
        self.energy().data_movement_share()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, dfg: f64, dm: f64, arrays: usize, adds: u64) -> LayerReport {
        LayerReport {
            name: name.to_string(),
            energy: EnergyBreakdown {
                dfg_fj: dfg,
                accumulation_fj: dfg / 4.0,
                peripherals_fj: dfg / 10.0,
                data_movement_fj: dm,
            },
            latency: LatencyBreakdown {
                dfg_ns: 100.0,
                accumulation_ns: 20.0,
                data_movement_ns: 5.0,
            },
            arrays,
            parallel_aps: arrays,
            adds_subs: adds,
            row_utilization: 0.8,
            interconnect_bits: 1000,
        }
    }

    fn network() -> NetworkReport {
        NetworkReport {
            name: "toy".to_string(),
            act_bits: 4,
            cse: true,
            layers: vec![layer("a", 1e9, 1e7, 4, 500), layer("b", 2e9, 3e7, 49, 1500)],
            endurance: EnduranceReport::from_write_interval(&rtm::RtmTechnology::default(), 100.0),
        }
    }

    #[test]
    fn totals_and_units() {
        let report = network();
        let energy = report.energy();
        assert!(energy.total_fj() > 3e9);
        assert!((report.energy_uj() - energy.total_fj() * 1e-9).abs() < 1e-9);
        assert!((report.latency_ms() - 250.0 * 1e-6).abs() < 1e-9);
    }

    #[test]
    fn arrays_is_the_maximum_over_layers() {
        let report = network();
        assert_eq!(report.arrays(), 49);
        assert!((report.adds_subs_k() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn data_movement_share_is_a_fraction() {
        let report = network();
        let share = report.data_movement_share();
        assert!(share > 0.0 && share < 0.5, "share {share}");
        assert_eq!(EnergyBreakdown::default().data_movement_share(), 0.0);
    }

    #[test]
    fn breakdown_addition_is_componentwise() {
        let a = EnergyBreakdown {
            dfg_fj: 1.0,
            accumulation_fj: 2.0,
            peripherals_fj: 3.0,
            data_movement_fj: 4.0,
        };
        let mut b = a;
        b += a;
        assert!((b.total_fj() - 20.0).abs() < 1e-12);
        let mut l = LatencyBreakdown {
            dfg_ns: 1.0,
            accumulation_ns: 2.0,
            data_movement_ns: 3.0,
        };
        l += l;
        assert!((l.total_ns() - 12.0).abs() < 1e-12);
    }
}
