//! DeepCAM-style baseline (the `[4]` row of Table II).
//!
//! DeepCAM computes approximate dot products entirely inside large CAM arrays by
//! hashing activations and weights and measuring match-line discharge timing. It is
//! extremely energy efficient on small networks, but (a) it relies on large arrays
//! (up to 512×1024), (b) its energy efficiency does not scale to deeper networks,
//! and (c) the approximation costs accuracy on complex tasks — the three caveats the
//! paper raises when comparing against it.

use serde::{Deserialize, Serialize};
use tnn::model::ModelGraph;

/// Results of the DeepCAM analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeepCamReport {
    /// Network name.
    pub name: String,
    /// Hash length in bits.
    pub hash_length: u8,
    /// Energy per inference in microjoules.
    pub energy_uj: f64,
    /// Latency per inference in milliseconds.
    pub latency_ms: f64,
    /// Number of CAM arrays.
    pub arrays: usize,
    /// Estimated top-1 accuracy drop (in percentage points) versus the
    /// full-precision software model.
    pub accuracy_drop_points: f64,
}

/// Analytical model of a DeepCAM-style accelerator.
///
/// # Example
///
/// ```
/// use baseline::DeepCamModel;
/// use tnn::model::vgg11;
///
/// let model = DeepCamModel::default();
/// let report = model.evaluate(&vgg11(0.85, 1));
/// assert!(report.energy_uj > 0.0);
/// assert!(report.accuracy_drop_points > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeepCamModel {
    /// Hash length in bits (longer hashes are more accurate but more expensive).
    pub hash_length: u8,
    /// Rows of one DeepCAM array.
    pub array_rows: usize,
    /// Columns of one DeepCAM array.
    pub array_cols: usize,
    /// Energy of one hashed CAM search per MAC-equivalent, in femtojoules.
    pub energy_per_mac_fj: f64,
    /// Throughput in MAC-equivalents per nanosecond for a small network.
    pub macs_per_ns: f64,
    /// Factor by which efficiency degrades per order of magnitude of model size
    /// beyond a LeNet-class network (the scalability issue noted in §V-A).
    pub scaling_penalty_per_decade: f64,
}

impl Default for DeepCamModel {
    fn default() -> Self {
        DeepCamModel {
            hash_length: 16,
            array_rows: 512,
            array_cols: 1024,
            energy_per_mac_fj: 1.2,
            macs_per_ns: 400.0,
            scaling_penalty_per_decade: 2.4,
        }
    }
}

impl DeepCamModel {
    /// Creates the default configuration (512×1024 arrays, 16-bit hashes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates a model. Energy scales super-linearly with model size beyond the
    /// LeNet-class baseline, and the accuracy drop grows with task complexity (proxy:
    /// number of weighted layers and classes).
    pub fn evaluate(&self, model: &ModelGraph) -> DeepCamReport {
        let macs = model.total_macs().max(1) as f64;
        let reference_macs = 1.0e7; // LeNet-class workload where DeepCAM shines.
        let decades = (macs / reference_macs).log10().max(0.0);
        let penalty = self.scaling_penalty_per_decade.powf(decades);
        let hash_factor = self.hash_length as f64 / 16.0;
        let energy_uj = macs * self.energy_per_mac_fj * hash_factor * penalty * 1e-9;
        let latency_ms = macs / (self.macs_per_ns / penalty.max(1.0)) * 1e-6;
        let weights = model.total_weights().max(1) as f64;
        let arrays = (weights * self.hash_length as f64
            / (self.array_rows as f64 * self.array_cols as f64))
            .ceil() as usize;
        let classes = model
            .conv_like_layers()
            .last()
            .map(|l| l.cout)
            .unwrap_or(10) as f64;
        // Approximation error grows with task complexity and shrinks with hash length.
        let accuracy_drop_points =
            (classes.log2() + decades) * (16.0 / self.hash_length as f64).max(0.5);
        DeepCamReport {
            name: model.name().to_string(),
            hash_length: self.hash_length,
            energy_uj,
            latency_ms,
            arrays: arrays.max(1),
            accuracy_drop_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn::model::{resnet18, vgg11};

    #[test]
    fn vgg11_is_cheap_but_inaccurate() {
        let model = DeepCamModel::default();
        let report = model.evaluate(&vgg11(0.85, 1));
        // Paper row [4]: sub-microjoule energies for VGG-11/CIFAR-10 and a drop from
        // 93.6% to 90.0% top-1 (about 3.6 points).
        assert!(report.energy_uj < 20.0, "energy {}", report.energy_uj);
        assert!(
            report.accuracy_drop_points > 1.0,
            "drop {}",
            report.accuracy_drop_points
        );
    }

    #[test]
    fn efficiency_does_not_scale_to_resnet18() {
        let model = DeepCamModel::default();
        let vgg = model.evaluate(&vgg11(0.85, 1));
        let resnet = model.evaluate(&resnet18(0.8, 1));
        let vgg_per_mac = vgg.energy_uj / vgg11(0.85, 1).total_macs() as f64;
        let resnet_per_mac = resnet.energy_uj / resnet18(0.8, 1).total_macs() as f64;
        assert!(
            resnet_per_mac > 1.5 * vgg_per_mac,
            "per-MAC energy should degrade with scale: {resnet_per_mac} vs {vgg_per_mac}"
        );
        assert!(resnet.accuracy_drop_points > vgg.accuracy_drop_points);
    }

    #[test]
    fn longer_hashes_cost_more_but_are_more_accurate() {
        let short = DeepCamModel {
            hash_length: 8,
            ..Default::default()
        };
        let long = DeepCamModel {
            hash_length: 32,
            ..Default::default()
        };
        let model = vgg11(0.85, 1);
        let short_report = short.evaluate(&model);
        let long_report = long.evaluate(&model);
        assert!(long_report.energy_uj > short_report.energy_uj);
        assert!(long_report.accuracy_drop_points < short_report.accuracy_drop_points);
    }
}
