//! DNN+NeuroSim-style RRAM crossbar baseline (the `[14]` rows of Table II).
//!
//! The model follows the standard analog compute-in-memory organisation: every layer
//! is flattened so the filter taps become crossbar rows and the output channels
//! (bit-sliced over multi-level cells) become crossbar columns; inputs are streamed
//! bit-serially; every activation of a 256×256 array triggers a column read and a
//! set of analog-to-digital conversions; partial sums are combined by shift-and-add
//! units; and the interconnect/peripherals account for roughly 41 % of the energy, as
//! the paper quotes for DNN+NeuroSim.

use serde::{Deserialize, Serialize};
use tnn::model::{ConvLayerInfo, ModelGraph};

/// Device and circuit figures of merit of the crossbar baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarTechnology {
    /// Rows of one crossbar array.
    pub array_rows: usize,
    /// Columns of one crossbar array.
    pub array_cols: usize,
    /// Weight precision in bits.
    pub weight_bits: u8,
    /// Bits stored per RRAM cell.
    pub cell_bits: u8,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// Number of ADC conversions per array activation (column mux sharing).
    pub adcs_per_activation: usize,
    /// Energy of one ADC conversion, in picojoules.
    pub adc_energy_pj: f64,
    /// Energy of reading/activating one array once, in picojoules.
    pub array_read_pj: f64,
    /// Energy of the digital shift-and-add accumulation per array activation, in
    /// picojoules.
    pub accumulation_pj: f64,
    /// Latency of one array activation (row drive, settle, ADC conversion, mux
    /// cycling), in nanoseconds.
    pub activation_latency_ns: f64,
    /// Fraction of the total energy spent on buffers, digital peripherals and the
    /// interconnect (the paper quotes 41 % communication share for DNN+NeuroSim).
    pub interconnect_share: f64,
}

impl Default for CrossbarTechnology {
    fn default() -> Self {
        CrossbarTechnology {
            array_rows: 256,
            array_cols: 256,
            weight_bits: 8,
            cell_bits: 2,
            adc_bits: 5,
            adcs_per_activation: 32,
            adc_energy_pj: 2.5,
            array_read_pj: 30.0,
            accumulation_pj: 10.0,
            activation_latency_ns: 82.0,
            interconnect_share: 0.41,
        }
    }
}

/// Per-layer and total results of the crossbar model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarReport {
    /// Network name.
    pub name: String,
    /// Activation precision in bits.
    pub act_bits: u8,
    /// Per-layer energy in femtojoules (same order as the model's weighted layers).
    pub layer_energy_fj: Vec<f64>,
    /// Per-layer latency in nanoseconds.
    pub layer_latency_ns: Vec<f64>,
    /// Per-layer names.
    pub layer_names: Vec<String>,
    /// Number of 256×256 crossbar arrays needed to hold the weights.
    pub arrays: usize,
}

impl CrossbarReport {
    /// Total energy per inference in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.layer_energy_fj.iter().sum::<f64>() * 1e-9
    }

    /// Total latency per inference in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.layer_latency_ns.iter().sum::<f64>() * 1e-6
    }

    /// Interconnect/peripheral share assumed by the model.
    pub fn interconnect_share(&self, tech: &CrossbarTechnology) -> f64 {
        tech.interconnect_share
    }
}

/// The analytical crossbar accelerator model.
///
/// # Example
///
/// ```
/// use baseline::CrossbarModel;
/// use tnn::model::vgg9;
///
/// let model = CrossbarModel::default();
/// let report = model.evaluate(&vgg9(0.85, 1), 4);
/// assert!(report.energy_uj() > 0.0);
/// assert!(report.latency_ms() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarModel {
    tech: CrossbarTechnology,
    act_bits: u8,
}

impl Default for CrossbarModel {
    fn default() -> Self {
        CrossbarModel {
            tech: CrossbarTechnology::default(),
            act_bits: 4,
        }
    }
}

impl CrossbarModel {
    /// Creates a model with explicit technology figures (4-bit activations).
    pub fn new(tech: CrossbarTechnology) -> Self {
        CrossbarModel { tech, act_bits: 4 }
    }

    /// The technology figures in use.
    pub fn technology(&self) -> &CrossbarTechnology {
        &self.tech
    }

    /// The activation precision used when the model is evaluated through the
    /// backend trait (the explicit-`act_bits` methods below ignore it).
    pub fn act_bits(&self) -> u8 {
        self.act_bits
    }

    /// Returns a copy configured for `act_bits`-bit activations.
    #[must_use]
    pub fn with_act_bits(mut self, act_bits: u8) -> Self {
        self.act_bits = act_bits;
        self
    }

    /// Arrays needed to store one layer's weights.
    fn layer_arrays(&self, layer: &ConvLayerInfo) -> usize {
        let rows = layer.cin * layer.kernel.0 * layer.kernel.1;
        let weight_cols =
            layer.cout * (self.tech.weight_bits as usize).div_ceil(self.tech.cell_bits as usize);
        rows.div_ceil(self.tech.array_rows) * weight_cols.div_ceil(self.tech.array_cols)
    }

    /// Evaluates one layer, returning `(energy_fj, latency_ns)`.
    pub fn evaluate_layer(&self, layer: &ConvLayerInfo, act_bits: u8) -> (f64, f64) {
        let tech = &self.tech;
        let arrays = self.layer_arrays(layer) as f64;
        let positions = layer.output_positions() as f64;
        // Bit-serial input streaming: one activation of every mapped array per output
        // position per input bit.
        let activations = positions * arrays * act_bits as f64;
        let compute_pj = activations
            * (tech.adcs_per_activation as f64 * tech.adc_energy_pj
                + tech.array_read_pj
                + tech.accumulation_pj);
        let total_pj = compute_pj / (1.0 - tech.interconnect_share).max(0.01);
        // Arrays of one layer operate in parallel; output positions and input bits are
        // streamed sequentially.
        let latency_ns = positions * act_bits as f64 * tech.activation_latency_ns;
        (total_pj * 1e3, latency_ns)
    }

    /// Evaluates every weighted layer of a model.
    pub fn evaluate(&self, model: &ModelGraph, act_bits: u8) -> CrossbarReport {
        let layers = model.conv_like_layers();
        let mut layer_energy_fj = Vec::with_capacity(layers.len());
        let mut layer_latency_ns = Vec::with_capacity(layers.len());
        let mut layer_names = Vec::with_capacity(layers.len());
        let mut arrays = 0usize;
        for layer in &layers {
            let (energy, latency) = self.evaluate_layer(layer, act_bits);
            layer_energy_fj.push(energy);
            layer_latency_ns.push(latency);
            layer_names.push(layer.name.clone());
            arrays += self.layer_arrays(layer);
        }
        CrossbarReport {
            name: model.name().to_string(),
            act_bits,
            layer_energy_fj,
            layer_latency_ns,
            layer_names,
            arrays,
        }
    }

    /// Per-component energy breakdown of one layer in femtojoules:
    /// `(array, adc, accumulation, peripherals_and_interconnect)`.
    pub fn layer_breakdown(&self, layer: &ConvLayerInfo, act_bits: u8) -> (f64, f64, f64, f64) {
        let tech = &self.tech;
        let arrays = self.layer_arrays(layer) as f64;
        let activations = layer.output_positions() as f64 * arrays * act_bits as f64;
        let array = activations * tech.array_read_pj * 1e3;
        let adc = activations * tech.adcs_per_activation as f64 * tech.adc_energy_pj * 1e3;
        let accumulation = activations * tech.accumulation_pj * 1e3;
        let compute = array + adc + accumulation;
        let peripherals =
            compute * tech.interconnect_share / (1.0 - tech.interconnect_share).max(0.01);
        (array, adc, accumulation, peripherals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn::model::{resnet18, vgg9};

    #[test]
    fn resnet18_lands_in_the_papers_range() {
        let model = CrossbarModel::default();
        let resnet = resnet18(0.8, 1);
        let four = model.evaluate(&resnet, 4);
        let eight = model.evaluate(&resnet, 8);
        // Paper (Table II, [14]): 104.92 uJ / 9.56 ms at 4-bit, 199.9 uJ / 12.2 ms at 8-bit.
        assert!(
            four.energy_uj() > 50.0 && four.energy_uj() < 200.0,
            "4-bit {:.1} uJ",
            four.energy_uj()
        );
        assert!(
            eight.energy_uj() > 120.0 && eight.energy_uj() < 400.0,
            "8-bit {:.1} uJ",
            eight.energy_uj()
        );
        assert!(
            four.latency_ms() > 4.0 && four.latency_ms() < 20.0,
            "4-bit {:.2} ms",
            four.latency_ms()
        );
        assert!(eight.latency_ms() > four.latency_ms());
        assert!(eight.energy_uj() > four.energy_uj());
    }

    #[test]
    fn vgg9_is_much_cheaper_than_resnet18() {
        let model = CrossbarModel::default();
        let vgg = model.evaluate(&vgg9(0.85, 1), 4);
        let resnet = model.evaluate(&resnet18(0.8, 1), 4);
        assert!(vgg.energy_uj() < resnet.energy_uj() / 4.0);
        assert!(vgg.latency_ms() < resnet.latency_ms() / 4.0);
        // Paper: 19.55 uJ / 1.06 ms — we accept the same order of magnitude.
        assert!(
            vgg.energy_uj() > 2.0 && vgg.energy_uj() < 60.0,
            "{:.1} uJ",
            vgg.energy_uj()
        );
        assert!(
            vgg.latency_ms() > 0.2 && vgg.latency_ms() < 4.0,
            "{:.2} ms",
            vgg.latency_ms()
        );
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let model = CrossbarModel::default();
        let vgg = vgg9(0.85, 1);
        let layer = &vgg.conv_like_layers()[1];
        let (array, adc, acc, periph) = model.layer_breakdown(layer, 4);
        let (total, _) = model.evaluate_layer(layer, 4);
        assert!((array + adc + acc + periph - total).abs() / total < 1e-6);
        // The interconnect/peripheral share matches the configured 41%.
        assert!((periph / total - 0.41).abs() < 0.02);
    }

    #[test]
    fn weight_precision_drives_array_count() {
        let model = CrossbarModel::default();
        let resnet = resnet18(0.8, 1);
        let report = model.evaluate(&resnet, 4);
        // Our convention counts every array needed to store the 8-bit weights in
        // 2-bit cells (hundreds for ResNet-18); the paper's "41" counts arrays per
        // concurrently mapped layer group. Either way the count must scale with the
        // weight volume and precision.
        assert!(report.arrays > 100, "arrays {}", report.arrays);
        let low_precision = CrossbarModel::new(CrossbarTechnology {
            weight_bits: 2,
            ..Default::default()
        });
        assert!(low_precision.evaluate(&resnet, 4).arrays < report.arrays);
    }

    #[test]
    fn serde_round_trip_of_technology() {
        let tech = CrossbarTechnology::default();
        let json = serde_json::to_string(&tech).expect("serialize");
        let back: CrossbarTechnology = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(tech, back);
    }
}
