//! Analytical baselines used for the comparisons in Table II and Fig. 4:
//!
//! * [`crossbar`] — a DNN+NeuroSim-style RRAM crossbar accelerator (256×256 arrays,
//!   8-bit weights in 2-bit cells, 5-bit ADCs, bit-serial input streaming, ~41 %
//!   interconnect energy share), and
//! * [`deepcam`] — a DeepCAM-style fully CAM-based accelerator with variable hash
//!   lengths, which is extremely efficient on small networks but scales poorly and
//!   loses accuracy on complex tasks.
//!
//! Both are closed-form models over the layer geometry of a [`tnn::model::ModelGraph`];
//! see DESIGN.md for the calibration argument.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod crossbar;
pub mod deepcam;

pub use crossbar::{CrossbarModel, CrossbarReport, CrossbarTechnology};
pub use deepcam::{DeepCamModel, DeepCamReport};
