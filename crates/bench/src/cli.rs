//! The shared command line of the bench binaries.
//!
//! Every `src/bin/` binary accepts the same two flags, parsed once through
//! [`BenchCli`] instead of twelve hand-rolled copies of the argument loop:
//!
//! * `--json <path>` — dump the run's `ResultSet` as JSON lines (schema:
//!   `BENCH_schema.md`);
//! * `--metrics <path>` — turn the [`telemetry`] recorder on for the run and
//!   write a `metrics_snapshot_v1` JSON document (counters, gauges,
//!   histograms, span aggregates) when the binary finishes.
//!
//! ```
//! let cli = camdnn_bench::BenchCli::parse(
//!     ["--json", "/tmp/out.json", "--metrics", "/tmp/metrics.json"]
//!         .map(String::from),
//! );
//! assert!(cli.json.is_some() && cli.metrics.is_some());
//! ```

use camdnn::experiment::ResultSet;
use camdnn::telemetry;
use std::path::PathBuf;

/// The parsed bench command line (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct BenchCli {
    /// `--json <path>`: where to dump the run's `ResultSet`, if requested.
    pub json: Option<PathBuf>,
    /// `--metrics <path>`: where to write the telemetry snapshot, if
    /// requested.
    pub metrics: Option<PathBuf>,
}

impl BenchCli {
    /// Parses `args` (the command line *without* the program name).
    /// Unrecognised arguments are ignored so binaries can grow flags of
    /// their own.
    ///
    /// # Panics
    ///
    /// Panics when `--json` or `--metrics` is passed without a path, so a
    /// forgotten argument fails loudly instead of silently skipping the
    /// output file.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = BenchCli::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => {
                    cli.json = Some(PathBuf::from(
                        args.next().expect("--json needs a path argument"),
                    ));
                }
                "--metrics" => {
                    cli.metrics = Some(PathBuf::from(
                        args.next().expect("--metrics needs a path argument"),
                    ));
                }
                _ => {}
            }
        }
        cli
    }

    /// Parses the process command line and, when `--metrics` was passed,
    /// turns the global [`telemetry`] recorder on (from a clean
    /// [`telemetry::reset`] state) so the run's instrumentation records.
    /// Call [`finish`](Self::finish) at the end of `main` to write the
    /// snapshot.
    pub fn from_env() -> Self {
        let cli = Self::parse(std::env::args().skip(1));
        if cli.metrics.is_some() && !telemetry::enabled() {
            telemetry::reset();
            telemetry::set_enabled(true);
        }
        cli
    }

    /// If `--json <path>` was passed, writes `results` as JSON lines via
    /// `ResultSet::write_json` (which proves the document parses back into
    /// an identical set before touching the file).
    ///
    /// # Panics
    ///
    /// Panics when the round-trip check fails or the file cannot be
    /// written; the bench binaries treat both as fatal.
    pub fn write_results(&self, results: &ResultSet) {
        let Some(path) = &self.json else {
            return;
        };
        results.write_json(path).expect("write JSON output");
        eprintln!(
            "wrote {} records to {} (schema: BENCH_schema.md)",
            results.records.len(),
            path.display()
        );
    }

    /// If `--metrics <path>` was passed, snapshots the global telemetry
    /// state, proves the JSON document round-trips byte-identically through
    /// [`telemetry::MetricsSnapshot::from_json`], and writes it to the path.
    ///
    /// # Panics
    ///
    /// Panics when the round trip fails or the file cannot be written.
    pub fn finish(&self) {
        let Some(path) = &self.metrics else {
            return;
        };
        let snapshot = telemetry::snapshot();
        let json = snapshot.to_json();
        let back =
            telemetry::MetricsSnapshot::from_json(&json).expect("metrics snapshot parses back");
        assert_eq!(
            json,
            back.to_json(),
            "metrics snapshot must round-trip byte-identically"
        );
        std::fs::write(path, format!("{json}\n")).expect("write metrics snapshot");
        eprintln!(
            "wrote metrics snapshot ({} counters, {} spans) to {} (schema: metrics_snapshot_v1)",
            snapshot.deterministic.counters.len(),
            snapshot.timing.spans.len(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_reads_both_flags_and_ignores_strangers() {
        let cli = BenchCli::parse(
            [
                "--verbose",
                "--json",
                "a.json",
                "--metrics",
                "m.json",
                "extra",
            ]
            .map(String::from),
        );
        assert_eq!(cli.json.as_deref(), Some(std::path::Path::new("a.json")));
        assert_eq!(cli.metrics.as_deref(), Some(std::path::Path::new("m.json")));
        let none = BenchCli::parse(Vec::new());
        assert!(none.json.is_none() && none.metrics.is_none());
    }

    #[test]
    #[should_panic(expected = "--metrics needs a path argument")]
    fn metrics_without_a_path_fails_loudly() {
        BenchCli::parse(["--metrics".to_string()]);
    }

    #[test]
    fn finish_writes_a_round_tripped_snapshot() {
        let dir = std::env::temp_dir().join("camdnn_bench_cli_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.json");
        let cli = BenchCli {
            json: None,
            metrics: Some(path.clone()),
        };
        cli.finish();
        let written = std::fs::read_to_string(&path).expect("snapshot file");
        let snapshot =
            telemetry::MetricsSnapshot::from_json(written.trim()).expect("snapshot parses");
        assert_eq!(snapshot.schema, telemetry::MetricsSnapshot::SCHEMA);
        std::fs::remove_file(&path).ok();
    }
}
