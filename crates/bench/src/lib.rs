//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in `src/bin/` that
//! prints the corresponding rows or series; see DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers. The binaries declare
//! their configuration grids with [`camdnn::experiment::SweepGrid`] and execute
//! them through a shared [`camdnn::experiment::Session`]; `--json <path>` dumps
//! the raw [`ResultSet`] as JSON lines (schema: `BENCH_schema.md`).

#![warn(missing_docs)]

use camdnn::experiment::{ResultSet, ScenarioRecord};
use camdnn::{BackendKind, PipelineReport};
use serde::Serialize;
use std::path::{Path, PathBuf};

pub mod cli;

pub use cli::BenchCli;

/// The mergeable log-bucketed latency histogram the benches accumulate
/// per-thread and per-run distributions in. Re-exported from
/// [`telemetry`] (its home since the telemetry spine landed) so existing
/// `camdnn_bench::LatencyHistogram` users keep compiling.
pub use telemetry::LatencyHistogram;

/// Pairs every scenario of `results` with its RTM-AP record and the legacy
/// [`PipelineReport`] view — the shape the table/figure printers consume.
///
/// Scenarios without all four standard backends are skipped.
pub fn scenario_views(results: &ResultSet) -> Vec<(&ScenarioRecord, PipelineReport)> {
    results
        .scenarios()
        .into_iter()
        .filter_map(|scenario| {
            let record = results.get(scenario, BackendKind::RtmAp)?;
            Some((record, results.pipeline(scenario)?))
        })
        .collect()
}

/// Parses a `--json <path>` argument from the process command line.
///
/// Thin wrapper over [`cli::BenchCli`] kept for callers that only need the
/// path; the binaries themselves parse once via [`BenchCli::from_env`].
///
/// # Panics
///
/// Panics when `--json` is passed without a path, so a forgotten argument
/// fails loudly instead of silently skipping the output file.
pub fn json_path_from_args() -> Option<PathBuf> {
    BenchCli::from_env().json
}

/// If `--json <path>` was passed, writes `results` as JSON lines to the path
/// via [`ResultSet::write_json`] (which proves the document parses back into
/// an identical set before touching the file).
///
/// # Panics
///
/// Panics when the round-trip check fails or the file cannot be written; the
/// benchmark binaries treat both as fatal.
pub fn maybe_write_json(results: &ResultSet) {
    BenchCli::from_env().write_results(results);
}

/// True when `BENCH_SMOKE` is set (non-empty, not `0`): the speedup benches
/// shrink their iteration counts so CI can smoke the full measurement and
/// record-emission path in seconds instead of minutes.
pub fn bench_smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The workspace root (two levels above this crate's manifest), where the
/// dated `BENCH_*.json` trajectory files live.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// Today's UTC date as `YYYY-MM-DD`, without a date-time dependency: days
/// since the Unix epoch converted to a civil date with the standard
/// era/year-of-era decomposition of the proleptic Gregorian calendar.
pub fn utc_date_string() -> String {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs() as i64;
    let (year, month, day) = civil_from_days(seconds.div_euclid(86_400));
    format!("{year:04}-{month:02}-{day:02}")
}

/// Days-since-epoch to `(year, month, day)` (Gregorian, valid across eras).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

/// Appends `record` as one JSON line to `file_name` at the workspace root.
///
/// The speedup benches call this to persist their perf trajectory
/// (`BENCH_engine.json`, `BENCH_throughput.json`; schema: `BENCH_schema.md`)
/// — one dated record per run, appended so the history accumulates.
///
/// # Panics
///
/// Panics when the record cannot be serialized or the file cannot be written;
/// the benches treat both as fatal.
pub fn append_bench_record<T: Serialize>(file_name: &str, record: &T) {
    use std::io::Write;
    let path = repo_root().join(file_name);
    let line = serde_json::to_string(record).expect("serialize bench record");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open bench record file");
    writeln!(file, "{line}").expect("append bench record");
    eprintln!("appended bench record to {}", path.display());
}

/// One dated `BENCH_engine.json` record: the two engine acceptance ratios
/// (scalar→interpreter, interpreter→plan) plus the plan compiler's fusion
/// and cache statistics (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct EngineBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"engine"`.
    pub bench: String,
    /// Scalar `ApController` wall-clock per work-list iteration, ms.
    pub scalar_ms_per_iter: f64,
    /// Interpreter `ApEngine::run` wall-clock per iteration, ms.
    pub interpreter_ms_per_iter: f64,
    /// Compiled-plan `ApEngine::run_plan` wall-clock per iteration, ms.
    pub plan_ms_per_iter: f64,
    /// scalar / interpreter ratio (the ≥20× bit-plane acceptance figure).
    pub engine_speedup: f64,
    /// interpreter / plan ratio (the ≥3× pass-plan acceptance figure).
    pub plan_speedup: f64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Plan cache and fusion statistics of the measured work list.
    pub plan_cache: apc::PlanSummary,
}

/// One dated `BENCH_throughput.json` record: wall-clock and modeled batched
/// throughput next to the plan cache statistics of the shared compile cache
/// (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"throughput"`.
    pub bench: String,
    /// Samples per packed batch.
    pub batch: usize,
    /// Wall-clock samples/s of the sequential (batch-of-one) baseline.
    pub sequential_samples_per_s: f64,
    /// Wall-clock samples/s of the batched path.
    pub batched_samples_per_s: f64,
    /// batched / sequential samples-per-second ratio (the ≥4× figure).
    pub batch_speedup: f64,
    /// Hardware-model throughput of the batched report.
    pub modeled_samples_per_s: f64,
    /// Hardware-model energy per sample of the batched report.
    pub joules_per_sample: f64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Plan cache and fusion statistics of the shared compile cache.
    pub plan_cache: apc::PlanSummary,
}

/// One dated `BENCH_partition.json` record: modeled samples/s of the
/// multi-tile partitioned execution across a ladder of tile grids, the
/// speedup of the largest grid over the single-tile run, and the traffic the
/// partitioning paid for it (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct PartitionBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"partition"`.
    pub bench: String,
    /// Workload label of the measured model.
    pub workload: String,
    /// Activation precision, in bits.
    pub act_bits: u8,
    /// Tile-grid labels of the ladder, e.g. `["1x1", "2x2", "4x4"]`.
    pub grids: Vec<String>,
    /// Modeled samples/s per grid, aligned with `grids`.
    pub modeled_samples_per_s: Vec<f64>,
    /// Largest-grid / single-tile modeled samples/s ratio (the scaling
    /// acceptance figure).
    pub modeled_speedup: f64,
    /// Tiles that received at least one unit on the largest grid.
    pub tiles_used: usize,
    /// Inter-tile operand traffic of the largest grid, in bits.
    pub traffic_bits: u64,
    /// Traffic weighted by Manhattan hop distance, in bit-hops.
    pub traffic_bit_hops: u64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Partition-plan cache counters of the shared compile cache.
    pub partition_cache: apc::CacheStats,
}

/// One dated `BENCH_serve.json` record of the fleet sweep: the pareto
/// frontier over SLO attainment vs joules/sample, the pipelining speedup of
/// the deepest shard cut, and the scaling high-water mark (schema:
/// `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct FleetBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"fleet"`.
    pub bench: String,
    /// Workload label of the served model.
    pub workload: String,
    /// Scenarios the sweep expanded to.
    pub scenarios: usize,
    /// Scenario labels of the pareto frontier, in expansion order.
    pub pareto_scenarios: Vec<String>,
    /// SLO attainment per frontier point, aligned with `pareto_scenarios`.
    pub pareto_slo_attainment: Vec<f64>,
    /// Joules/sample per frontier point, aligned with `pareto_scenarios`.
    pub pareto_joules_per_sample: Vec<f64>,
    /// Deepest-cut / single-stage modeled samples/s ratio at saturating
    /// fixed-fleet load (the pipelining acceptance figure).
    pub pipeline_speedup: f64,
    /// Largest provisioned replica count any scenario reached.
    pub peak_replicas: usize,
    /// Largest provisioned tile count any scenario reached.
    pub peak_tiles: u64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
}

/// One dated `BENCH_telemetry.json` record: the disabled-recorder overhead
/// of the instrumented engine hot loop over its uninstrumented twin, plus
/// the enabled-recorder cost for context (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"telemetry"`.
    pub bench: String,
    /// Uninstrumented `ApEngine::run_plan_raw` wall-clock per work-list
    /// iteration, ms (best of the measured repetitions).
    pub raw_ms_per_iter: f64,
    /// Instrumented `ApEngine::run_plan` with recording **off**, ms.
    pub disabled_ms_per_iter: f64,
    /// Instrumented `ApEngine::run_plan` with recording **on**, ms.
    pub enabled_ms_per_iter: f64,
    /// `disabled / raw - 1`: the disabled-recorder overhead fraction the
    /// bench pins below `TELEMETRY_OVERHEAD_MAX` (default 0.03).
    pub disabled_overhead: f64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
}

/// Formats a Table II row header.
pub fn table2_header() -> String {
    format!(
        "{:<22} {:>5} {:>5} | {:>10} {:>9} {:>7} | {:>12} {:>12} | {:>12} {:>10}",
        "network/dataset",
        "spars",
        "act",
        "energy[uJ]",
        "lat[ms]",
        "arrays",
        "adds(unroll)K",
        "adds(cse)K",
        "xbar E[uJ]",
        "xbar L[ms]"
    )
}

/// Formats one Table II row from a pipeline report.
pub fn table2_row(label: &str, report: &PipelineReport) -> String {
    format!(
        "{:<22} {:>5.2} {:>4}b | {:>10.2} {:>9.3} {:>7} | {:>13.0} {:>12.0} | {:>12.2} {:>10.2}",
        label,
        report.sparsity,
        report.rtm_ap.act_bits,
        report.rtm_ap.energy_uj(),
        report.rtm_ap.latency_ms(),
        report.rtm_ap.arrays(),
        report.rtm_ap_unroll.adds_subs_k(),
        report.rtm_ap.adds_subs_k(),
        report.crossbar.energy_uj(),
        report.crossbar.latency_ms(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdnn::experiment::{Session, SweepGrid};
    use tnn::model::micro_cnn;

    #[test]
    fn histogram_reexport_is_the_telemetry_type() {
        // The bucket-level behaviour is tested in `camdnn-telemetry` (its
        // home crate); here we only pin that the re-export stays wired.
        let mut histogram = LatencyHistogram::new();
        histogram.record_ns(1_000);
        assert_eq!(histogram.count(), 1);
        let _: &telemetry::LatencyHistogram = &histogram;
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(365), (1971, 1, 1));
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        let today = utc_date_string();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
        assert_eq!(today.as_bytes()[7], b'-');
    }

    #[test]
    fn bench_records_serialize_with_schema_fields() {
        let record = EngineBenchRecord {
            date: "2026-01-01".to_string(),
            bench: "engine".to_string(),
            scalar_ms_per_iter: 100.0,
            interpreter_ms_per_iter: 5.0,
            plan_ms_per_iter: 1.0,
            engine_speedup: 20.0,
            plan_speedup: 5.0,
            smoke: false,
            plan_cache: apc::PlanSummary::default(),
        };
        let json = serde_json::to_string(&record).expect("serialize");
        for field in [
            "\"date\"",
            "\"bench\"",
            "\"plan_speedup\"",
            "\"passes_before_fusion\"",
            "\"passes_after_fusion\"",
            "\"hits\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn scenario_views_cover_every_scenario() {
        let session = Session::new();
        let results = session
            .run(
                &SweepGrid::new()
                    .workload(micro_cnn("micro", 8, 0.8, 1))
                    .act_bits([4, 8]),
            )
            .expect("sweep");
        let views = scenario_views(&results);
        assert_eq!(views.len(), 2);
        assert!(table2_header().contains("energy"));
        for (record, view) in views {
            assert_eq!(view.rtm_ap.act_bits, record.act_bits);
            assert!(table2_row(&record.workload, &view).contains("micro"));
        }
    }
}
