//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in `src/bin/` that
//! prints the corresponding rows or series; see DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers. The binaries declare
//! their configuration grids with [`camdnn::experiment::SweepGrid`] and execute
//! them through a shared [`camdnn::experiment::Session`]; `--json <path>` dumps
//! the raw [`ResultSet`] as JSON lines (schema: `BENCH_schema.md`).

#![warn(missing_docs)]

use camdnn::experiment::{ResultSet, ScenarioRecord};
use camdnn::{BackendKind, PipelineReport};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Sub-buckets per power of two of the log-linear histogram: values are
/// resolved to within `1/32` (~3%) of their magnitude.
const HISTOGRAM_SUB_BUCKETS: u64 = 32;
const HISTOGRAM_SUB_SHIFT: u32 = 5; // log2(HISTOGRAM_SUB_BUCKETS)

/// A mergeable log-bucketed latency histogram over nanosecond values.
///
/// Buckets are log-linear (32 linear sub-buckets per power of two), so any
/// `u64` latency lands in one of ~1900 fixed buckets with at most ~3%
/// relative quantisation error — the usual HDR-style trade-off. Percentiles
/// are read with the nearest-rank rule over bucket upper bounds, and two
/// histograms [`merge`](Self::merge) by adding counts, which makes the type
/// suitable for accumulating per-thread or per-run distributions in the
/// benches (`benches/throughput.rs`, `benches/serving.rs`) without keeping
/// every sample.
///
/// # Example
///
/// ```
/// use camdnn_bench::LatencyHistogram;
///
/// let mut histogram = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     histogram.record_ns(v);
/// }
/// assert_eq!(histogram.count(), 1000);
/// let p50 = histogram.percentile_ns(50.0);
/// assert!((485..=515).contains(&p50), "p50 within 3%: {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // Index space: values below 32 map 1:1; every further power of two
        // contributes 32 sub-buckets, up to the 2^63 octave.
        let octaves = 64 - HISTOGRAM_SUB_SHIFT as usize;
        LatencyHistogram {
            counts: vec![0; (octaves + 1) * HISTOGRAM_SUB_BUCKETS as usize],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_index(value_ns: u64) -> usize {
        if value_ns < HISTOGRAM_SUB_BUCKETS {
            return value_ns as usize;
        }
        let exponent = 63 - value_ns.leading_zeros();
        let shift = exponent - HISTOGRAM_SUB_SHIFT;
        let sub = (value_ns >> shift) - HISTOGRAM_SUB_BUCKETS;
        ((shift as u64 + 1) * HISTOGRAM_SUB_BUCKETS + sub) as usize
    }

    /// Largest value that maps to bucket `index` (the representative a
    /// percentile read returns).
    fn bucket_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < HISTOGRAM_SUB_BUCKETS {
            return index;
        }
        let shift = (index / HISTOGRAM_SUB_BUCKETS - 1) as u32;
        let sub = index % HISTOGRAM_SUB_BUCKETS;
        // In u128: the top bucket's bound is exactly 2^64 - 1.
        let bound = ((u128::from(HISTOGRAM_SUB_BUCKETS + sub) + 1) << shift) - 1;
        bound.min(u128::from(u64::MAX)) as u64
    }

    /// Records one latency in nanoseconds.
    pub fn record_ns(&mut self, value_ns: u64) {
        self.counts[Self::bucket_index(value_ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(value_ns);
        self.min_ns = self.min_ns.min(value_ns);
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Records one wall-clock duration.
    pub fn record(&mut self, duration: Duration) {
        self.record_ns(duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of the recorded values (exact), or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.total)) as u64
        }
    }

    /// The nearest-rank `pct` percentile, resolved to the containing
    /// bucket's upper bound (within ~3% of the exact value); 0 when empty.
    pub fn percentile_ns(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report beyond the exact maximum.
                return Self::bucket_bound(index).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Adds every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Renders `p50/p95/p99/max` in milliseconds for bench logs.
    pub fn summary_ms(&self) -> String {
        format!(
            "p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms (n={})",
            self.percentile_ns(50.0) as f64 / 1e6,
            self.percentile_ns(95.0) as f64 / 1e6,
            self.percentile_ns(99.0) as f64 / 1e6,
            self.max_ns() as f64 / 1e6,
            self.total
        )
    }
}

/// Pairs every scenario of `results` with its RTM-AP record and the legacy
/// [`PipelineReport`] view — the shape the table/figure printers consume.
///
/// Scenarios without all four standard backends are skipped.
pub fn scenario_views(results: &ResultSet) -> Vec<(&ScenarioRecord, PipelineReport)> {
    results
        .scenarios()
        .into_iter()
        .filter_map(|scenario| {
            let record = results.get(scenario, BackendKind::RtmAp)?;
            Some((record, results.pipeline(scenario)?))
        })
        .collect()
}

/// Parses a `--json <path>` argument from the process command line.
///
/// # Panics
///
/// Panics when `--json` is passed without a path, so a forgotten argument
/// fails loudly instead of silently skipping the output file.
pub fn json_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(PathBuf::from(
                args.next().expect("--json needs a path argument"),
            ));
        }
    }
    None
}

/// If `--json <path>` was passed, writes `results` as JSON lines to the path
/// via [`ResultSet::write_json`] (which proves the document parses back into
/// an identical set before touching the file).
///
/// # Panics
///
/// Panics when the round-trip check fails or the file cannot be written; the
/// benchmark binaries treat both as fatal.
pub fn maybe_write_json(results: &ResultSet) {
    let Some(path) = json_path_from_args() else {
        return;
    };
    results.write_json(&path).expect("write JSON output");
    eprintln!(
        "wrote {} records to {} (schema: BENCH_schema.md)",
        results.records.len(),
        path.display()
    );
}

/// True when `BENCH_SMOKE` is set (non-empty, not `0`): the speedup benches
/// shrink their iteration counts so CI can smoke the full measurement and
/// record-emission path in seconds instead of minutes.
pub fn bench_smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The workspace root (two levels above this crate's manifest), where the
/// dated `BENCH_*.json` trajectory files live.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// Today's UTC date as `YYYY-MM-DD`, without a date-time dependency: days
/// since the Unix epoch converted to a civil date with the standard
/// era/year-of-era decomposition of the proleptic Gregorian calendar.
pub fn utc_date_string() -> String {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs() as i64;
    let (year, month, day) = civil_from_days(seconds.div_euclid(86_400));
    format!("{year:04}-{month:02}-{day:02}")
}

/// Days-since-epoch to `(year, month, day)` (Gregorian, valid across eras).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

/// Appends `record` as one JSON line to `file_name` at the workspace root.
///
/// The speedup benches call this to persist their perf trajectory
/// (`BENCH_engine.json`, `BENCH_throughput.json`; schema: `BENCH_schema.md`)
/// — one dated record per run, appended so the history accumulates.
///
/// # Panics
///
/// Panics when the record cannot be serialized or the file cannot be written;
/// the benches treat both as fatal.
pub fn append_bench_record<T: Serialize>(file_name: &str, record: &T) {
    use std::io::Write;
    let path = repo_root().join(file_name);
    let line = serde_json::to_string(record).expect("serialize bench record");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open bench record file");
    writeln!(file, "{line}").expect("append bench record");
    eprintln!("appended bench record to {}", path.display());
}

/// One dated `BENCH_engine.json` record: the two engine acceptance ratios
/// (scalar→interpreter, interpreter→plan) plus the plan compiler's fusion
/// and cache statistics (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct EngineBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"engine"`.
    pub bench: String,
    /// Scalar `ApController` wall-clock per work-list iteration, ms.
    pub scalar_ms_per_iter: f64,
    /// Interpreter `ApEngine::run` wall-clock per iteration, ms.
    pub interpreter_ms_per_iter: f64,
    /// Compiled-plan `ApEngine::run_plan` wall-clock per iteration, ms.
    pub plan_ms_per_iter: f64,
    /// scalar / interpreter ratio (the ≥20× bit-plane acceptance figure).
    pub engine_speedup: f64,
    /// interpreter / plan ratio (the ≥3× pass-plan acceptance figure).
    pub plan_speedup: f64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Plan cache and fusion statistics of the measured work list.
    pub plan_cache: apc::PlanSummary,
}

/// One dated `BENCH_throughput.json` record: wall-clock and modeled batched
/// throughput next to the plan cache statistics of the shared compile cache
/// (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"throughput"`.
    pub bench: String,
    /// Samples per packed batch.
    pub batch: usize,
    /// Wall-clock samples/s of the sequential (batch-of-one) baseline.
    pub sequential_samples_per_s: f64,
    /// Wall-clock samples/s of the batched path.
    pub batched_samples_per_s: f64,
    /// batched / sequential samples-per-second ratio (the ≥4× figure).
    pub batch_speedup: f64,
    /// Hardware-model throughput of the batched report.
    pub modeled_samples_per_s: f64,
    /// Hardware-model energy per sample of the batched report.
    pub joules_per_sample: f64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Plan cache and fusion statistics of the shared compile cache.
    pub plan_cache: apc::PlanSummary,
}

/// One dated `BENCH_partition.json` record: modeled samples/s of the
/// multi-tile partitioned execution across a ladder of tile grids, the
/// speedup of the largest grid over the single-tile run, and the traffic the
/// partitioning paid for it (schema: `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct PartitionBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"partition"`.
    pub bench: String,
    /// Workload label of the measured model.
    pub workload: String,
    /// Activation precision, in bits.
    pub act_bits: u8,
    /// Tile-grid labels of the ladder, e.g. `["1x1", "2x2", "4x4"]`.
    pub grids: Vec<String>,
    /// Modeled samples/s per grid, aligned with `grids`.
    pub modeled_samples_per_s: Vec<f64>,
    /// Largest-grid / single-tile modeled samples/s ratio (the scaling
    /// acceptance figure).
    pub modeled_speedup: f64,
    /// Tiles that received at least one unit on the largest grid.
    pub tiles_used: usize,
    /// Inter-tile operand traffic of the largest grid, in bits.
    pub traffic_bits: u64,
    /// Traffic weighted by Manhattan hop distance, in bit-hops.
    pub traffic_bit_hops: u64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
    /// Partition-plan cache counters of the shared compile cache.
    pub partition_cache: apc::CacheStats,
}

/// One dated `BENCH_serve.json` record of the fleet sweep: the pareto
/// frontier over SLO attainment vs joules/sample, the pipelining speedup of
/// the deepest shard cut, and the scaling high-water mark (schema:
/// `BENCH_schema.md`).
#[derive(Debug, Clone, Serialize)]
pub struct FleetBenchRecord {
    /// UTC date the record was measured (`YYYY-MM-DD`).
    pub date: String,
    /// Record discriminator, always `"fleet"`.
    pub bench: String,
    /// Workload label of the served model.
    pub workload: String,
    /// Scenarios the sweep expanded to.
    pub scenarios: usize,
    /// Scenario labels of the pareto frontier, in expansion order.
    pub pareto_scenarios: Vec<String>,
    /// SLO attainment per frontier point, aligned with `pareto_scenarios`.
    pub pareto_slo_attainment: Vec<f64>,
    /// Joules/sample per frontier point, aligned with `pareto_scenarios`.
    pub pareto_joules_per_sample: Vec<f64>,
    /// Deepest-cut / single-stage modeled samples/s ratio at saturating
    /// fixed-fleet load (the pipelining acceptance figure).
    pub pipeline_speedup: f64,
    /// Largest provisioned replica count any scenario reached.
    pub peak_replicas: usize,
    /// Largest provisioned tile count any scenario reached.
    pub peak_tiles: u64,
    /// True when measured under `BENCH_SMOKE` iteration counts.
    pub smoke: bool,
}

/// Formats a Table II row header.
pub fn table2_header() -> String {
    format!(
        "{:<22} {:>5} {:>5} | {:>10} {:>9} {:>7} | {:>12} {:>12} | {:>12} {:>10}",
        "network/dataset",
        "spars",
        "act",
        "energy[uJ]",
        "lat[ms]",
        "arrays",
        "adds(unroll)K",
        "adds(cse)K",
        "xbar E[uJ]",
        "xbar L[ms]"
    )
}

/// Formats one Table II row from a pipeline report.
pub fn table2_row(label: &str, report: &PipelineReport) -> String {
    format!(
        "{:<22} {:>5.2} {:>4}b | {:>10.2} {:>9.3} {:>7} | {:>13.0} {:>12.0} | {:>12.2} {:>10.2}",
        label,
        report.sparsity,
        report.rtm_ap.act_bits,
        report.rtm_ap.energy_uj(),
        report.rtm_ap.latency_ms(),
        report.rtm_ap.arrays(),
        report.rtm_ap_unroll.adds_subs_k(),
        report.rtm_ap.adds_subs_k(),
        report.crossbar.energy_uj(),
        report.crossbar.latency_ms(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdnn::experiment::{Session, SweepGrid};
    use tnn::model::micro_cnn;

    #[test]
    fn histogram_buckets_cover_the_u64_range_in_order() {
        // Bucket bounds are monotone and every value maps to a bucket whose
        // bound is >= the value with <= ~3.2% relative error.
        for value in [
            0u64,
            1,
            31,
            32,
            63,
            64,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = LatencyHistogram::bucket_index(value);
            let bound = LatencyHistogram::bucket_bound(index);
            assert!(bound >= value, "bound {bound} < value {value}");
            assert!(
                bound - value <= value / 32 + 1,
                "bucket too coarse at {value}: bound {bound}"
            );
        }
        let bounds: Vec<u64> = (0..200).map(LatencyHistogram::bucket_bound).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histogram_percentiles_track_exact_ranks() {
        let mut histogram = LatencyHistogram::new();
        for value in 1..=10_000u64 {
            histogram.record_ns(value);
        }
        assert_eq!(histogram.count(), 10_000);
        assert_eq!(histogram.min_ns(), 1);
        assert_eq!(histogram.max_ns(), 10_000);
        assert_eq!(histogram.mean_ns(), 5_000);
        for (pct, exact) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = histogram.percentile_ns(pct);
            let error = got.abs_diff(exact);
            assert!(
                error * 32 <= exact,
                "p{pct}: got {got}, exact {exact} (error {error})"
            );
        }
        assert!(histogram.summary_ms().contains("n=10000"));
        // An empty histogram reads as zeros.
        let empty = LatencyHistogram::new();
        assert_eq!(
            (empty.percentile_ns(99.0), empty.mean_ns(), empty.min_ns()),
            (0, 0, 0)
        );
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for value in 0..5_000u64 {
            let scaled = value * 37 + 11;
            if value % 2 == 0 {
                left.record_ns(scaled);
            } else {
                right.record_ns(scaled);
            }
            combined.record_ns(scaled);
        }
        left.merge(&right);
        assert_eq!(left, combined);
        left.record(Duration::from_micros(3));
        assert_eq!(left.count(), combined.count() + 1);
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(365), (1971, 1, 1));
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        let today = utc_date_string();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
        assert_eq!(today.as_bytes()[7], b'-');
    }

    #[test]
    fn bench_records_serialize_with_schema_fields() {
        let record = EngineBenchRecord {
            date: "2026-01-01".to_string(),
            bench: "engine".to_string(),
            scalar_ms_per_iter: 100.0,
            interpreter_ms_per_iter: 5.0,
            plan_ms_per_iter: 1.0,
            engine_speedup: 20.0,
            plan_speedup: 5.0,
            smoke: false,
            plan_cache: apc::PlanSummary::default(),
        };
        let json = serde_json::to_string(&record).expect("serialize");
        for field in [
            "\"date\"",
            "\"bench\"",
            "\"plan_speedup\"",
            "\"passes_before_fusion\"",
            "\"passes_after_fusion\"",
            "\"hits\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn scenario_views_cover_every_scenario() {
        let session = Session::new();
        let results = session
            .run(
                &SweepGrid::new()
                    .workload(micro_cnn("micro", 8, 0.8, 1))
                    .act_bits([4, 8]),
            )
            .expect("sweep");
        let views = scenario_views(&results);
        assert_eq!(views.len(), 2);
        assert!(table2_header().contains("energy"));
        for (record, view) in views {
            assert_eq!(view.rtm_ap.act_bits, record.act_bits);
            assert!(table2_row(&record.workload, &view).contains("micro"));
        }
    }
}
