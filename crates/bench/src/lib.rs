//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in `src/bin/` that
//! prints the corresponding rows or series; see DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers.

#![warn(missing_docs)]

use camdnn::{FullStackPipeline, PipelineReport};
use tnn::model::ModelGraph;

/// Runs the full pipeline (RTM-AP with and without CSE, crossbar and DeepCAM
/// baselines) for one workload at one activation precision.
///
/// # Panics
///
/// Panics when the model cannot be compiled for the default geometry — the bundled
/// workloads always can.
pub fn evaluate(model: ModelGraph, act_bits: u8) -> PipelineReport {
    FullStackPipeline::new(model)
        .with_activation_bits(act_bits)
        .run()
        .expect("the bundled workloads compile on the default geometry")
}

/// Formats a Table II row header.
pub fn table2_header() -> String {
    format!(
        "{:<22} {:>5} {:>5} | {:>10} {:>9} {:>7} | {:>12} {:>12} | {:>12} {:>10}",
        "network/dataset",
        "spars",
        "act",
        "energy[uJ]",
        "lat[ms]",
        "arrays",
        "adds(unroll)K",
        "adds(cse)K",
        "xbar E[uJ]",
        "xbar L[ms]"
    )
}

/// Formats one Table II row from a pipeline report.
pub fn table2_row(label: &str, report: &PipelineReport) -> String {
    format!(
        "{:<22} {:>5.2} {:>4}b | {:>10.2} {:>9.3} {:>7} | {:>13.0} {:>12.0} | {:>12.2} {:>10.2}",
        label,
        report.sparsity,
        report.rtm_ap.act_bits,
        report.rtm_ap.energy_uj(),
        report.rtm_ap.latency_ms(),
        report.rtm_ap.arrays(),
        report.rtm_ap_unroll.adds_subs_k(),
        report.rtm_ap.adds_subs_k(),
        report.crossbar.energy_uj(),
        report.crossbar.latency_ms(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn::model::vgg9;

    #[test]
    fn helpers_produce_printable_rows() {
        let report = evaluate(vgg9(0.9, 1), 4);
        let row = table2_row("VGG-9/CIFAR10", &report);
        assert!(row.contains("VGG-9"));
        assert!(table2_header().contains("energy"));
    }
}
