//! Shared helpers for the experiment-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in `src/bin/` that
//! prints the corresponding rows or series; see DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers. The binaries declare
//! their configuration grids with [`camdnn::experiment::SweepGrid`] and execute
//! them through a shared [`camdnn::experiment::Session`]; `--json <path>` dumps
//! the raw [`ResultSet`] as JSON lines (schema: `BENCH_schema.md`).

#![warn(missing_docs)]

use camdnn::experiment::{ResultSet, ScenarioRecord};
use camdnn::{BackendKind, PipelineReport};
use std::path::PathBuf;

/// Pairs every scenario of `results` with its RTM-AP record and the legacy
/// [`PipelineReport`] view — the shape the table/figure printers consume.
///
/// Scenarios without all four standard backends are skipped.
pub fn scenario_views(results: &ResultSet) -> Vec<(&ScenarioRecord, PipelineReport)> {
    results
        .scenarios()
        .into_iter()
        .filter_map(|scenario| {
            let record = results.get(scenario, BackendKind::RtmAp)?;
            Some((record, results.pipeline(scenario)?))
        })
        .collect()
}

/// Parses a `--json <path>` argument from the process command line.
///
/// # Panics
///
/// Panics when `--json` is passed without a path, so a forgotten argument
/// fails loudly instead of silently skipping the output file.
pub fn json_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(PathBuf::from(
                args.next().expect("--json needs a path argument"),
            ));
        }
    }
    None
}

/// If `--json <path>` was passed, writes `results` as JSON lines to the path
/// via [`ResultSet::write_json`] (which proves the document parses back into
/// an identical set before touching the file).
///
/// # Panics
///
/// Panics when the round-trip check fails or the file cannot be written; the
/// benchmark binaries treat both as fatal.
pub fn maybe_write_json(results: &ResultSet) {
    let Some(path) = json_path_from_args() else {
        return;
    };
    results.write_json(&path).expect("write JSON output");
    eprintln!(
        "wrote {} records to {} (schema: BENCH_schema.md)",
        results.records.len(),
        path.display()
    );
}

/// Formats a Table II row header.
pub fn table2_header() -> String {
    format!(
        "{:<22} {:>5} {:>5} | {:>10} {:>9} {:>7} | {:>12} {:>12} | {:>12} {:>10}",
        "network/dataset",
        "spars",
        "act",
        "energy[uJ]",
        "lat[ms]",
        "arrays",
        "adds(unroll)K",
        "adds(cse)K",
        "xbar E[uJ]",
        "xbar L[ms]"
    )
}

/// Formats one Table II row from a pipeline report.
pub fn table2_row(label: &str, report: &PipelineReport) -> String {
    format!(
        "{:<22} {:>5.2} {:>4}b | {:>10.2} {:>9.3} {:>7} | {:>13.0} {:>12.0} | {:>12.2} {:>10.2}",
        label,
        report.sparsity,
        report.rtm_ap.act_bits,
        report.rtm_ap.energy_uj(),
        report.rtm_ap.latency_ms(),
        report.rtm_ap.arrays(),
        report.rtm_ap_unroll.adds_subs_k(),
        report.rtm_ap.adds_subs_k(),
        report.crossbar.energy_uj(),
        report.crossbar.latency_ms(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use camdnn::experiment::{Session, SweepGrid};
    use tnn::model::micro_cnn;

    #[test]
    fn scenario_views_cover_every_scenario() {
        let session = Session::new();
        let results = session
            .run(
                &SweepGrid::new()
                    .workload(micro_cnn("micro", 8, 0.8, 1))
                    .act_bits([4, 8]),
            )
            .expect("sweep");
        let views = scenario_views(&results);
        assert_eq!(views.len(), 2);
        assert!(table2_header().contains("energy"));
        for (record, view) in views {
            assert_eq!(view.rtm_ap.act_bits, record.act_bits);
            assert!(table2_row(&record.workload, &view).contains("micro"));
        }
    }
}
