//! Ablation benches for the design choices called out in DESIGN.md §5:
//! in-place vs out-of-place operation mix, activation precision, and CAM geometry.
//!
//! Run with `cargo run -p camdnn-bench --bin ablation --release`.

use apc::layout::CamGeometry;
use apc::{CompilerOptions, LayerCompiler};
use camdnn::{ArchConfig, FullStackPipeline};
use tnn::model::vgg9;

fn main() {
    let model = vgg9(0.9, 5);

    println!("== In-place vs out-of-place instruction mix (VGG-9 conv layers) ==");
    let compiler = LayerCompiler::new(CompilerOptions::default());
    for layer in model.conv_like_layers().iter().take(6) {
        let compiled = compiler.compile(layer).expect("compile");
        println!(
            "  {:<10} in-place {:7}  out-of-place {:7}  ({:4.1}% in place, 8 vs 10 cycles/bit)",
            layer.name,
            compiled.stats.in_place,
            compiled.stats.out_of_place,
            compiled.stats.in_place_fraction() * 100.0
        );
    }

    println!("\n== Activation precision (energy / latency / resident channels per cell) ==");
    for act_bits in [2u8, 4, 6, 8] {
        let report = FullStackPipeline::new(model.clone())
            .with_activation_bits(act_bits)
            .run()
            .expect("pipeline");
        println!(
            "  {act_bits} bits: {:8.2} uJ  {:7.3} ms  {:2} channels/cell",
            report.rtm_ap.energy_uj(),
            report.rtm_ap.latency_ms(),
            64 / act_bits as usize
        );
    }

    println!("\n== CAM geometry (rows per array) ==");
    for rows in [128usize, 256, 512] {
        let geometry = CamGeometry {
            rows,
            cols: 256,
            domains: 64,
        };
        let report = FullStackPipeline::new(model.clone())
            .with_arch(ArchConfig::default().with_geometry(geometry))
            .with_compiler_options(CompilerOptions {
                geometry,
                ..CompilerOptions::default()
            })
            .run()
            .expect("pipeline");
        println!(
            "  {rows:4} rows: {:8.2} uJ  {:7.3} ms  {:3} arrays",
            report.rtm_ap.energy_uj(),
            report.rtm_ap.latency_ms(),
            report.rtm_ap.arrays()
        );
    }
}
