//! Ablation benches for the design choices called out in DESIGN.md §5:
//! in-place vs out-of-place operation mix, activation precision, and CAM geometry.
//!
//! The precision and geometry ablations are declarative sweeps through one
//! shared session, so the configurations that coincide (4-bit activations on
//! the 256-row geometry) reuse each other's compiled layers.
//!
//! Run with `cargo run -p camdnn-bench --bin ablation --release`.

use apc::layout::CamGeometry;
use apc::{CompilerOptions, LayerCompiler};
use camdnn::experiment::{Session, SweepGrid};
use camdnn::BackendKind;
use camdnn_bench::BenchCli;
use tnn::model::vgg9;

fn main() {
    let cli = BenchCli::from_env();
    let model = vgg9(0.9, 5);
    let session = Session::new();

    println!("== In-place vs out-of-place instruction mix (VGG-9 conv layers) ==");
    let compiler = LayerCompiler::new(CompilerOptions::default());
    for layer in model.conv_like_layers().iter().take(6) {
        let compiled = session.cache().compile(&compiler, layer).expect("compile");
        println!(
            "  {:<10} in-place {:7}  out-of-place {:7}  ({:4.1}% in place, 8 vs 10 cycles/bit)",
            layer.name,
            compiled.stats.in_place,
            compiled.stats.out_of_place,
            compiled.stats.in_place_fraction() * 100.0
        );
    }

    println!("\n== Activation precision (energy / latency / resident channels per cell) ==");
    let precision = session
        .run(
            &SweepGrid::new()
                .workload(model.clone())
                .act_bits([2, 4, 6, 8]),
        )
        .expect("precision sweep");
    for record in precision.for_backend(BackendKind::RtmAp) {
        println!(
            "  {} bits: {:8.2} uJ  {:7.3} ms  {:2} channels/cell",
            record.act_bits,
            record.energy_uj,
            record.latency_ms,
            64 / record.act_bits as usize
        );
    }

    println!("\n== CAM geometry (rows per array) ==");
    let geometry = session
        .run(
            &SweepGrid::new()
                .workload(model)
                .geometries([128usize, 256, 512].map(|rows| CamGeometry {
                    rows,
                    cols: 256,
                    domains: 64,
                })),
        )
        .expect("geometry sweep");
    for record in geometry.for_backend(BackendKind::RtmAp) {
        println!(
            "  {:4} rows: {:8.2} uJ  {:7.3} ms  {:3} arrays",
            record.geometry.rows, record.energy_uj, record.latency_ms, record.arrays
        );
    }

    let stats = session.cache_stats();
    println!(
        "\ncompile cache: {} layer compilations served {} requests ({:.0}% hit rate)",
        stats.misses,
        stats.requests(),
        stats.hit_rate() * 100.0
    );
    cli.finish();
}
