//! Regenerates the Fig. 3 / Eq. 1 walk-through: the 6×6 ternary matrix-vector
//! product that the paper reduces from 19 to 7 operations with CSE, plus the Table I
//! cycle counts of the underlying lookup tables.
//!
//! Run with `cargo run -p camdnn-bench --bin fig3_equation1 --release`.

use ap::{Lut, LutKind};
use apc::dfg::Dfg;
use camdnn_bench::BenchCli;

fn main() {
    let cli = BenchCli::from_env();
    println!("Table I — lookup-table cycle counts per processed bit");
    for kind in [
        LutKind::AddInPlace,
        LutKind::SubInPlace,
        LutKind::AddOutOfPlace,
        LutKind::SubOutOfPlace,
    ] {
        let lut = Lut::of(kind);
        println!(
            "  {:?}: {} passes -> {} cycles/bit",
            kind,
            lut.passes().len(),
            lut.cycles_per_bit()
        );
    }

    println!("\nEquation 1 — operation count before and after CSE (paper: 19 -> 7)");
    let mut dfg = Dfg::equation1();
    let before = dfg.op_count();
    let outcome = dfg.apply_cse().expect("cse");
    let after = dfg.op_count();
    println!("  non-zero weights          : 20");
    println!("  ops before CSE            : {}", before.total());
    println!("  shared signals introduced : {}", outcome.new_signals);
    println!("  ops after CSE             : {}", after.total());
    println!(
        "  reduction                 : {:.0}%",
        (1.0 - after.total() as f64 / before.total() as f64) * 100.0
    );

    println!("\nShared signals and remaining output expressions:");
    for (id, def) in dfg.signals.iter().skip(dfg.signals.inputs()) {
        println!("  x{id} = {def:?}");
    }
    for (o, expr) in dfg.outputs.iter().enumerate() {
        let terms: Vec<String> = expr
            .iter()
            .map(|(s, sign)| format!("{}x{s}", if sign > 0 { "+" } else { "-" }))
            .collect();
        println!(
            "  y{o} = {}",
            if terms.is_empty() {
                "0".to_string()
            } else {
                terms.join(" ")
            }
        );
    }
    cli.finish();
}
