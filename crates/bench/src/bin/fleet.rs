//! Fleet sweep: shards × replicas × autoscaler policy on the deterministic
//! virtual-clock fleet simulator, under diurnal and flash-crowd traffic.
//!
//! Prints the headline fleet table (achieved samples/s, p99 latency, SLO
//! attainment, peak replicas/tiles, energy per sample) with the pareto
//! frontier over SLO attainment vs joules/sample marked, appends one dated
//! `fleet` record to `BENCH_serve.json`, and with `--json <path>` dumps the
//! raw `FleetResultSet` as JSON lines (schema: `BENCH_schema.md`, `fleet
//! record` section). A fixed trace seed makes the output byte-identical
//! across runs and thread counts.

use camdnn_bench::{append_bench_record, bench_smoke, utc_date_string, BenchCli, FleetBenchRecord};
use serve::{AutoscalePolicy, BatchingPolicy, FleetGrid, FleetSession, TraceSpec};
use tnn::model::micro_cnn;

fn main() {
    let cli = BenchCli::from_env();
    // Smoke mode shrinks the traces so CI exercises the full emission path
    // in seconds; real runs replay 20k requests per trace point.
    let requests = if bench_smoke() { 512 } else { 20_000 };
    let seed = 42;
    let queue_depth = AutoscalePolicy::QueueDepth {
        check_interval_ns: 10_000,
        up_per_replica: 8,
        down_per_replica: 1,
        min_replicas: 1,
        max_replicas: 6,
        warmup_ns: 5_000,
    };
    let slo_headroom = AutoscalePolicy::SloHeadroom {
        check_interval_ns: 10_000,
        up_wait_permille: 400,
        down_wait_permille: 40,
        min_replicas: 1,
        max_replicas: 6,
        warmup_ns: 5_000,
    };
    let grid = FleetGrid::new()
        .workload(micro_cnn("micro_cnn", 8, 0.8, 42))
        .traffic([
            // Saturating steady load: the fixed-fleet pipelining baseline.
            TraceSpec::poisson(4_000_000.0, requests, seed),
            // Diurnal swing around a saturating mean.
            TraceSpec::diurnal(2_000_000.0, 0.8, 0.001, requests, seed),
            // Flash crowd: 20x spike over a sustainable base.
            TraceSpec::flash_crowd(500_000.0, 20.0, 0.000_5, 0.002, requests, seed),
        ])
        .shards([1, 2])
        .replicas([1, 2])
        .autoscalers([AutoscalePolicy::Fixed, queue_depth, slo_headroom])
        .batching(BatchingPolicy::new(8, 100))
        .slo_ms(0.05);

    let session = FleetSession::new();
    let results = session.run(&grid).expect("fleet sweep");
    println!(
        "Fleet sweep: micro_cnn, {} requests per trace, SLO 50 us, {} scenarios",
        requests,
        results.records.len()
    );
    println!("(virtual clock; * marks the pareto frontier over SLO vs joules/sample)\n");
    print!("{}", results.to_table());

    // Headline: the pipelining speedup of the 2-shard cut over the single
    // stage at saturating fixed load, and the pareto frontier.
    let find = |needle: &str| {
        results
            .records
            .iter()
            .find(|r| r.scenario.contains(needle))
            .expect("scenario present")
    };
    let one = find(&format!("poisson@4000000x{requests} s1 r1 fixed"));
    let two = find(&format!("poisson@4000000x{requests} s2 r1 fixed"));
    let pipeline_speedup = two.report.samples_per_s / one.report.samples_per_s;
    println!(
        "\nsaturating load, one replica: 2-shard pipeline {:.0} samples/s vs {:.0} single \
         stage ({:.2}x)",
        two.report.samples_per_s, one.report.samples_per_s, pipeline_speedup,
    );
    let pareto = results.pareto();
    println!("\npareto frontier:");
    for record in &pareto {
        println!("  {}", record.report.summary());
    }

    let record = FleetBenchRecord {
        date: utc_date_string(),
        bench: "fleet".to_string(),
        workload: "micro_cnn".to_string(),
        scenarios: results.records.len(),
        pareto_scenarios: pareto.iter().map(|r| r.scenario.clone()).collect(),
        pareto_slo_attainment: pareto.iter().map(|r| r.report.slo_attainment).collect(),
        pareto_joules_per_sample: pareto.iter().map(|r| r.report.joules_per_sample).collect(),
        pipeline_speedup,
        peak_replicas: results
            .records
            .iter()
            .map(|r| r.report.peak_replicas)
            .max()
            .unwrap_or(0),
        peak_tiles: results
            .records
            .iter()
            .map(|r| r.report.peak_tiles)
            .max()
            .unwrap_or(0),
        smoke: bench_smoke(),
    };
    append_bench_record("BENCH_serve.json", &record);

    if let Some(path) = &cli.json {
        results.write_json(path).expect("write JSON output");
        eprintln!(
            "wrote {} fleet records to {} (schema: BENCH_schema.md)",
            results.records.len(),
            path.display()
        );
    }
    cli.finish();
}
