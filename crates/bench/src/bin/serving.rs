//! Serving sweep: traffic intensity × batching policy × replica count on the
//! deterministic virtual-clock simulator.
//!
//! Prints the headline serving table (achieved samples/s, p50/p99 latency,
//! SLO attainment, mean batch size) for `micro_cnn` under Poisson and bursty
//! load, and with `--json <path>` dumps the raw `ServeResultSet` as JSON
//! lines (schema: `BENCH_schema.md`, `serve record` section). A fixed trace
//! seed makes the output byte-identical across runs and thread counts.

use camdnn_bench::BenchCli;
use serve::{ArrivalProcess, BatchingPolicy, RoutePolicy, ServeGrid, ServeSession, TraceSpec};
use tnn::model::micro_cnn;

fn main() {
    let cli = BenchCli::from_env();
    let requests = 192;
    let seed = 42;
    let grid = ServeGrid::new()
        .workload(micro_cnn("micro_cnn", 8, 0.8, 42))
        .traffic([
            // Light load: the batcher mostly times out with small batches.
            TraceSpec::poisson(200_000.0, requests, seed),
            // Saturating load: ~4 arrivals per modeled solo service time.
            TraceSpec::poisson(2_000_000.0, requests, seed),
            // Bursty load: quiet stretches broken by saturating bursts.
            TraceSpec {
                process: ArrivalProcess::Bursty {
                    idle_rate_per_s: 100_000.0,
                    burst_rate_per_s: 4_000_000.0,
                    mean_phase_requests: 24.0,
                },
                requests,
                seed,
            },
        ])
        .batching([
            BatchingPolicy::single(),
            BatchingPolicy::new(8, 100),
            BatchingPolicy::new(32, 400),
        ])
        .replicas([1, 2])
        .routing(RoutePolicy::JoinShortestQueue)
        .slo_ms(0.05);

    let session = ServeSession::new();
    let results = session.run(&grid).expect("serving sweep");
    println!(
        "Serving sweep: micro_cnn, {} requests per trace, SLO 50 us",
        requests
    );
    println!("(virtual clock; logits bit-identical to solo runs at every point)\n");
    print!("{}", results.to_table());

    // Headline: dynamic batching vs single dispatch at saturating load.
    let find = |needle: &str| {
        results
            .records
            .iter()
            .find(|r| r.scenario.contains(needle))
            .expect("scenario present")
    };
    let single = find("poisson@2000000x192 b1/0us r1");
    let batched = find("poisson@2000000x192 b32/400us r1");
    println!(
        "\nsaturating load, one replica: dynamic batching {:.0} samples/s vs {:.0} single \
         dispatch ({:.1}x), p99 {:.3} ms vs {:.3} ms",
        batched.report.samples_per_s,
        single.report.samples_per_s,
        batched.report.samples_per_s / single.report.samples_per_s,
        batched.report.latency.p99_ms(),
        single.report.latency.p99_ms(),
    );

    if let Some(path) = &cli.json {
        results.write_json(path).expect("write JSON output");
        eprintln!(
            "wrote {} serve records to {} (schema: BENCH_schema.md)",
            results.records.len(),
            path.display()
        );
    }
    cli.finish();
}
