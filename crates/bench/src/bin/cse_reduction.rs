//! Regenerates the §V-A claim: CSE reduces the number of additions by roughly a
//! third (ResNet-18: 1 499 K → 931 K in the paper), with the largest gains in layers
//! with big kernels.
//!
//! Run with `cargo run -p camdnn-bench --bin cse_reduction --release`.

use apc::{CompilerOptions, LayerCompiler};
use tnn::model::{resnet18, vgg11, vgg9, ModelGraph};

fn network_reduction(model: &ModelGraph) -> (f64, f64, f64) {
    let cse = LayerCompiler::new(CompilerOptions::default());
    let unroll = LayerCompiler::new(CompilerOptions::unroll_only());
    let mut with = 0u64;
    let mut without = 0u64;
    for layer in model.conv_like_layers() {
        with += cse
            .compile(&layer)
            .expect("compile")
            .stats
            .counted_adds_subs;
        without += unroll
            .compile(&layer)
            .expect("compile")
            .stats
            .counted_adds_subs;
    }
    (
        without as f64 / 1e3,
        with as f64 / 1e3,
        1.0 - with as f64 / without as f64,
    )
}

fn main() {
    println!(
        "CSE reduction in add/sub operations (paper: ResNet-18 1499K -> 931K, ~31% average)\n"
    );
    for (label, model) in [
        ("ResNet18/ImageNet (0.80)", resnet18(0.8, 7)),
        ("VGG-9/CIFAR10 (0.85)", vgg9(0.85, 3)),
        ("VGG-9/CIFAR10 (0.90)", vgg9(0.90, 3)),
        ("VGG-11/CIFAR10 (0.85)", vgg11(0.85, 3)),
        ("VGG-11/CIFAR10 (0.90)", vgg11(0.90, 3)),
    ] {
        let (unroll_k, cse_k, reduction) = network_reduction(&model);
        println!(
            "{label:<28} unroll={unroll_k:9.0}K  unroll+CSE={cse_k:9.0}K  reduction={:5.1}%",
            reduction * 100.0
        );
    }

    // Per-layer view for ResNet-18: the 7x7 stem benefits the most.
    println!("\nResNet-18 per-layer reduction (first 6 layers):");
    let model = resnet18(0.8, 7);
    let cse = LayerCompiler::new(CompilerOptions::default());
    let unroll = LayerCompiler::new(CompilerOptions::unroll_only());
    for layer in model.conv_like_layers().iter().take(6) {
        let a = cse.compile(layer).expect("compile").stats.counted_adds_subs as f64;
        let b = unroll
            .compile(layer)
            .expect("compile")
            .stats
            .counted_adds_subs as f64;
        println!(
            "  {:<24} kernel {:?}  reduction {:5.1}%",
            layer.name,
            layer.kernel,
            (1.0 - a / b) * 100.0
        );
    }
}
