//! Regenerates the §V-A claim: CSE reduces the number of additions by roughly a
//! third (ResNet-18: 1 499 K → 931 K in the paper), with the largest gains in layers
//! with big kernels.
//!
//! One sweep over the five workloads with the two RTM-AP compiler
//! configurations as the backend axis; the per-layer view reuses the same
//! records instead of recompiling.
//!
//! Run with `cargo run -p camdnn-bench --bin cse_reduction --release`.

use camdnn::experiment::{BackendPlan, Session, SweepGrid};
use camdnn::BackendKind;
use camdnn_bench::BenchCli;
use tnn::model::{resnet18, vgg11, vgg9};

fn main() {
    let cli = BenchCli::from_env();
    println!(
        "CSE reduction in add/sub operations (paper: ResNet-18 1499K -> 931K, ~31% average)\n"
    );
    let resnet = resnet18(0.8, 7);
    let resnet_kernels: Vec<(usize, usize)> =
        resnet.conv_like_layers().iter().map(|l| l.kernel).collect();
    let grid = SweepGrid::new()
        .workloads([
            ("ResNet18/ImageNet (0.80)", resnet),
            ("VGG-9/CIFAR10 (0.85)", vgg9(0.85, 3)),
            ("VGG-9/CIFAR10 (0.90)", vgg9(0.90, 3)),
            ("VGG-11/CIFAR10 (0.85)", vgg11(0.85, 3)),
            ("VGG-11/CIFAR10 (0.90)", vgg11(0.90, 3)),
        ])
        .backends([BackendPlan::rtm_ap(), BackendPlan::rtm_ap_unroll()]);
    let session = Session::new();
    let results = session.run(&grid).expect("the CSE grid compiles");

    for scenario in results.scenarios() {
        let cse = results
            .get(scenario, BackendKind::RtmAp)
            .expect("cse record");
        let unroll = results
            .get(scenario, BackendKind::RtmApUnroll)
            .expect("unroll record");
        let cse_k = cse.report.as_rtm_ap().expect("rtm").adds_subs_k();
        let unroll_k = unroll.report.as_rtm_ap().expect("rtm").adds_subs_k();
        println!(
            "{:<28} unroll={unroll_k:9.0}K  unroll+CSE={cse_k:9.0}K  reduction={:5.1}%",
            cse.workload,
            (1.0 - cse_k / unroll_k) * 100.0
        );
    }

    // Per-layer view for ResNet-18: the 7x7 stem benefits the most.
    println!("\nResNet-18 per-layer reduction (first 6 layers):");
    let scenario = results.scenarios()[0].to_string();
    let cse = results
        .get(&scenario, BackendKind::RtmAp)
        .and_then(|r| r.report.as_rtm_ap())
        .expect("rtm-ap report");
    let unroll = results
        .get(&scenario, BackendKind::RtmApUnroll)
        .and_then(|r| r.report.as_rtm_ap())
        .expect("unroll report");
    for (i, layer) in cse.layers.iter().take(6).enumerate() {
        let a = layer.adds_subs as f64;
        let b = unroll.layers[i].adds_subs as f64;
        println!(
            "  {:<24} kernel {:?}  reduction {:5.1}%",
            layer.name,
            resnet_kernels[i],
            (1.0 - a / b) * 100.0
        );
    }
    cli.finish();
}
