//! Regenerates the §V-C data-movement comparison: the RTM-AP moves partial results
//! only, a small share of its total energy, while the crossbar baseline spends 41 %
//! of its energy on communication.
//!
//! Run with `cargo run -p camdnn-bench --bin data_movement --release`.

use baseline::CrossbarTechnology;
use camdnn::experiment::{Session, SweepGrid};
use camdnn_bench::{scenario_views, BenchCli};
use tnn::model::{resnet18, vgg9};

fn main() {
    let cli = BenchCli::from_env();
    println!("Data-movement share of total energy (paper: RTM-AP ~3%, crossbar ~41%)\n");
    let grid = SweepGrid::new().workloads([
        ("ResNet18/ImageNet", resnet18(0.8, 7)),
        ("VGG-9/CIFAR10", vgg9(0.9, 3)),
    ]);
    let session = Session::new();
    let results = session.run(&grid).expect("the grid compiles");
    for (record, report) in scenario_views(&results) {
        let energy = report.rtm_ap.energy();
        println!("{:<20}", record.workload);
        println!(
            "  RTM-AP total            : {:8.2} uJ",
            report.rtm_ap.energy_uj()
        );
        println!(
            "  ├── DFG phase           : {:8.2} uJ",
            energy.dfg_fj * 1e-9
        );
        println!(
            "  ├── accumulation phase  : {:8.2} uJ",
            energy.accumulation_fj * 1e-9
        );
        println!(
            "  ├── peripherals         : {:8.2} uJ",
            energy.peripherals_fj * 1e-9
        );
        println!(
            "  └── data movement       : {:8.2} uJ ({:.1}% of total)",
            energy.data_movement_fj * 1e-9,
            report.rtm_ap.data_movement_share() * 100.0
        );
        println!(
            "  crossbar baseline       : {:8.2} uJ with {:.0}% spent on communication/peripherals\n",
            report.crossbar.energy_uj(),
            CrossbarTechnology::default().interconnect_share * 100.0
        );
    }
    cli.finish();
}
