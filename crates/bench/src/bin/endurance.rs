//! Regenerates the §V-C endurance analysis: with at most two column writes per
//! operation spread over 256 columns, the hottest racetrack location is rewritten
//! about every 100 ns, giving a ~31-year lifetime at 10^16 write cycles.
//!
//! Run with `cargo run -p camdnn-bench --bin endurance --release`.

use camdnn::experiment::{Session, SweepGrid};
use camdnn::BackendKind;
use camdnn_bench::BenchCli;
use rtm::endurance::{column_rewrite_interval_ns, EnduranceReport};
use rtm::RtmTechnology;
use tnn::model::vgg9;

fn main() {
    let cli = BenchCli::from_env();
    println!("Write endurance of the RTM-AP (paper: ~31 years)\n");
    let tech = RtmTechnology::default();

    println!("Analytical worst case (2 column writes/op, 0.8 ns in-place op):");
    for columns in [128usize, 256, 512] {
        let interval = column_rewrite_interval_ns(columns, 2.0, 0.8);
        let report = EnduranceReport::from_write_interval(&tech, interval);
        println!(
            "  {columns:4} columns -> rewrite every {:6.1} ns -> {:5.1} years",
            report.write_interval_ns, report.lifetime_years
        );
    }

    let session = Session::new();
    let results = session
        .run(&SweepGrid::new().workload(vgg9(0.9, 3)))
        .expect("the workload compiles");
    let rtm = &results.records[0];
    assert_eq!(rtm.backend, BackendKind::RtmAp.id());
    let endurance = rtm.report.as_rtm_ap().expect("rtm-ap report").endurance;
    println!(
        "\nWorkload-derived estimate (VGG-9, 4-bit): rewrite every {:.1} ns -> {:.1} years",
        endurance.write_interval_ns, endurance.lifetime_years
    );
    cli.finish();
}
