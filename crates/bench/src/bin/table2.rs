//! Regenerates Table II: accuracy-preserving energy, latency, array counts and
//! add/sub counts for ResNet-18/ImageNet and VGG-9/VGG-11/CIFAR-10 at 4- and 8-bit
//! activations, next to the crossbar baseline.
//!
//! Run with `cargo run -p camdnn-bench --bin table2 --release`.

use camdnn_bench::{evaluate, table2_header, table2_row};
use tnn::model::{resnet18, vgg11, vgg9};
use tnn::train::accuracy_experiment;

fn main() {
    println!("Table II — RTM-AP (unroll+CSE) vs DNN+NeuroSim-style crossbar\n");
    println!("{}", table2_header());

    let workloads: Vec<(&str, tnn::model::ModelGraph)> = vec![
        ("ResNet18/ImageNet .80", resnet18(0.8, 7)),
        ("VGG-9/CIFAR10   .85", vgg9(0.85, 3)),
        ("VGG-9/CIFAR10   .90", vgg9(0.90, 3)),
        ("VGG-11/CIFAR10  .85", vgg11(0.85, 3)),
        ("VGG-11/CIFAR10  .90", vgg11(0.90, 3)),
    ];
    for (label, model) in workloads {
        for act_bits in [4u8, 8] {
            let report = evaluate(model.clone(), act_bits);
            println!("{}", table2_row(label, &report));
        }
    }

    println!("\nAccuracy columns (synthetic-task substitute, see DESIGN.md):");
    let (fp, q8, q4) = accuracy_experiment(21).expect("accuracy experiment");
    println!(
        "  full precision: {:.1}%   ternary + 8-bit: {:.1}%   ternary + 4-bit: {:.1}%",
        fp * 100.0,
        q8 * 100.0,
        q4 * 100.0
    );
    println!("  (the AP itself is bit-exact against the quantized software model — see the bit_exactness tests)");
}
