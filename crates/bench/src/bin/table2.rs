//! Regenerates Table II: accuracy-preserving energy, latency, array counts and
//! add/sub counts for ResNet-18/ImageNet and VGG-9/VGG-11/CIFAR-10 at 4- and 8-bit
//! activations, next to the crossbar baseline.
//!
//! The whole table is one declarative sweep — 5 workloads × {4, 8}-bit
//! activations — executed as a single parallel job pool with shared layer
//! compilation.
//!
//! Run with `cargo run -p camdnn-bench --bin table2 --release`; add
//! `--json <path>` to dump the raw records as JSON lines (see `BENCH_schema.md`).

use camdnn::experiment::{Session, SweepGrid};
use camdnn_bench::{scenario_views, table2_header, table2_row, BenchCli};
use tnn::model::{resnet18, vgg11, vgg9};
use tnn::train::accuracy_experiment;

fn main() {
    let cli = BenchCli::from_env();
    println!("Table II — RTM-AP (unroll+CSE) vs DNN+NeuroSim-style crossbar\n");
    println!("{}", table2_header());

    let grid = SweepGrid::new()
        .workloads([
            ("ResNet18/ImageNet .80", resnet18(0.8, 7)),
            ("VGG-9/CIFAR10   .85", vgg9(0.85, 3)),
            ("VGG-9/CIFAR10   .90", vgg9(0.90, 3)),
            ("VGG-11/CIFAR10  .85", vgg11(0.85, 3)),
            ("VGG-11/CIFAR10  .90", vgg11(0.90, 3)),
        ])
        .act_bits([4, 8]);
    let session = Session::new();
    let results = session.run(&grid).expect("the Table II grid compiles");
    for (record, report) in scenario_views(&results) {
        println!("{}", table2_row(&record.workload, &report));
    }
    cli.write_results(&results);

    println!("\nAccuracy columns (synthetic-task substitute, see DESIGN.md):");
    let columns = accuracy_experiment(21).expect("accuracy experiment");
    println!(
        "  full precision: {:.1}%   ternary + 8-bit: {:.1}%   ternary + 4-bit: {:.1}%   graph 4-bit: {:.1}%",
        columns.fp * 100.0,
        columns.q8 * 100.0,
        columns.q4 * 100.0,
        columns.graph4 * 100.0
    );
    println!("  (the AP itself is bit-exact against the quantized software model — see the bit_exactness tests)");
    cli.finish();
}
