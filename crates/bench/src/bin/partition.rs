//! Multi-tile partitioning sweep: modeled samples/s scaling with tile count.
//!
//! Runs the functional backend over a ladder of tile grids and prints, per
//! grid, the modeled latency/throughput next to the partition-quality report
//! (tiles used, per-tile utilisation, inter-tile traffic) the scenario
//! records carry. A layer that exceeds one tile's CAM capacity is split by
//! the `apc::partition` pipeline; the extra grids then spread the sub-layers
//! and shrink the critical path to the busiest tile plus the routed operand
//! movement.
//!
//! Run with `cargo run -p camdnn-bench --bin partition --release`; pass
//! `--vgg` to sweep the VGG-9/CIFAR10 workload instead of the channel-heavy
//! micro CNN (slower, exercises real convolution stacks), and `--json <path>`
//! to dump the raw records (schema: `BENCH_schema.md`).

use apc::TileGrid;
use camdnn::experiment::{BackendPlan, Session, SweepGrid};
use camdnn_bench::BenchCli;
use tnn::model::{micro_cnn, vgg9};

fn main() {
    let cli = BenchCli::from_env();
    let vgg = std::env::args().any(|arg| arg == "--vgg");
    let grid = SweepGrid::new()
        .act_bits([4])
        .backends([BackendPlan::functional()])
        .tile_grids([
            TileGrid::default(),
            TileGrid { rows: 2, cols: 2 },
            TileGrid { rows: 2, cols: 4 },
            TileGrid { rows: 4, cols: 4 },
        ]);
    let grid = if vgg {
        grid.workload(("VGG-9/CIFAR10", vgg9(0.9, 3)))
    } else {
        grid.workload(("micro-64/synthetic", micro_cnn("micro-64", 64, 0.8, 42)))
    };
    let session = Session::new();
    let results = session.run(&grid).expect("the sweep compiles");
    println!("Modeled throughput scaling with tile count (functional backend, 4-bit)\n");
    println!(
        "{:<28} {:>6} {:>10} {:>12} {:>8} | {:>6} {:>8} {:>8} {:>12} {:>12} {:>10}",
        "scenario",
        "grid",
        "lat[ms]",
        "samples/s",
        "speedup",
        "tiles",
        "util row",
        "util col",
        "traffic[b]",
        "bit-hops",
        "route[uJ]"
    );
    let baseline = results.records.first().map(|r| r.samples_per_s);
    for record in &results.records {
        let quality = record
            .partition
            .as_ref()
            .expect("functional records carry partition quality");
        println!(
            "{:<28} {:>6} {:>10.4} {:>12.1} {:>7.2}x | {:>6} {:>8.2} {:>8.2} {:>12} {:>12} {:>10.4}",
            record.scenario,
            record.tile_grid.label(),
            record.latency_ms,
            record.samples_per_s,
            record.samples_per_s / baseline.expect("baseline record"),
            quality.tiles_used,
            quality.row_utilization,
            quality.col_utilization,
            quality.traffic_bits,
            quality.traffic_bit_hops,
            quality.route_energy_uj,
        );
    }
    let stats = session.cache().partition_stats();
    println!(
        "\npartition cache: {} plans compiled, {} hits / {} misses",
        stats.misses, stats.hits, stats.misses
    );
    cli.write_results(&results);
    cli.finish();
}
