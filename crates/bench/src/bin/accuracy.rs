//! Regenerates the accuracy columns of Table II on the offline-trainable substitute
//! task (see DESIGN.md), and demonstrates the bit-exactness of the AP against the
//! quantized software model.
//!
//! Run with `cargo run -p camdnn-bench --bin accuracy --release`.

use camdnn::experiment::{BackendPlan, Session, SweepGrid};
use camdnn::verify::verify_random_layer;
use tnn::model::micro_cnn;
use tnn::train::accuracy_experiment;

fn main() {
    println!("Accuracy experiment (synthetic blob task, ternary MLP)\n");
    println!("{:<8} {:>8} {:>8} {:>8}", "seed", "FP", "8-bit", "4-bit");
    let mut sums = [0.0f64; 3];
    let runs = 5;
    for seed in 0..runs {
        let (fp, q8, q4) = accuracy_experiment(100 + seed).expect("accuracy experiment");
        println!(
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}%",
            seed,
            fp * 100.0,
            q8 * 100.0,
            q4 * 100.0
        );
        sums[0] += fp;
        sums[1] += q8;
        sums[2] += q4;
    }
    println!(
        "{:<8} {:>7.1}% {:>7.1}% {:>7.1}%",
        "mean",
        sums[0] / runs as f64 * 100.0,
        sums[1] / runs as f64 * 100.0,
        sums[2] / runs as f64 * 100.0
    );

    println!("\nBit-exactness of the associative processor vs the quantized reference:");
    for (label, cin, cout, kernel, act_bits) in [
        ("3x3 conv, 4-bit", 3usize, 8usize, 3usize, 4u8),
        ("3x3 conv, 8-bit", 2, 6, 3, 8),
        ("1x1 conv, 4-bit", 8, 8, 1, 4),
    ] {
        let report = verify_random_layer(cin, cout, kernel, 6, act_bits, 0.8, 7).expect("verify");
        println!(
            "  {label:<18} {} positions x {} outputs -> {}",
            report.positions_checked,
            report.outputs_checked,
            if report.is_bit_exact() {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        );
    }

    // End-to-end: the `functional` backend column executes whole networks on
    // the word-parallel AP engine and pins the logits to `tnn::infer`. Only
    // the functional column is swept — this bin reads nothing else.
    println!("\nEnd-to-end functional execution (word-parallel AP engine):");
    let grid = SweepGrid::new()
        .workloads([
            micro_cnn("micro s=.80", 8, 0.80, 1),
            micro_cnn("micro s=.90", 8, 0.90, 2),
        ])
        .act_bits([4, 8])
        .backends([BackendPlan::functional()]);
    let session = Session::new();
    let results = session.run(&grid).expect("functional sweep");
    for scenario in results.scenarios() {
        let record = results
            .get(scenario, "functional")
            .expect("functional record");
        let report = record.report.as_functional().expect("functional report");
        println!(
            "  {scenario:<24} {} values checked, {} mismatches -> {}; class {:?}",
            report.checked_values,
            report.mismatched_values,
            if report.is_bit_exact() {
                "bit-exact"
            } else {
                "MISMATCH"
            },
            report.predicted_class
        );
    }
}
