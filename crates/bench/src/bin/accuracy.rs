//! Regenerates the accuracy columns of Table II on the offline-trainable substitute
//! task (see DESIGN.md), and demonstrates the bit-exactness of the AP against the
//! quantized software model.
//!
//! Run with `cargo run -p camdnn-bench --bin accuracy --release`.

use camdnn::verify::verify_random_layer;
use tnn::train::accuracy_experiment;

fn main() {
    println!("Accuracy experiment (synthetic blob task, ternary MLP)\n");
    println!("{:<8} {:>8} {:>8} {:>8}", "seed", "FP", "8-bit", "4-bit");
    let mut sums = [0.0f64; 3];
    let runs = 5;
    for seed in 0..runs {
        let (fp, q8, q4) = accuracy_experiment(100 + seed).expect("accuracy experiment");
        println!(
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}%",
            seed,
            fp * 100.0,
            q8 * 100.0,
            q4 * 100.0
        );
        sums[0] += fp;
        sums[1] += q8;
        sums[2] += q4;
    }
    println!(
        "{:<8} {:>7.1}% {:>7.1}% {:>7.1}%",
        "mean",
        sums[0] / runs as f64 * 100.0,
        sums[1] / runs as f64 * 100.0,
        sums[2] / runs as f64 * 100.0
    );

    println!("\nBit-exactness of the associative processor vs the quantized reference:");
    for (label, cin, cout, kernel, act_bits) in [
        ("3x3 conv, 4-bit", 3usize, 8usize, 3usize, 4u8),
        ("3x3 conv, 8-bit", 2, 6, 3, 8),
        ("1x1 conv, 4-bit", 8, 8, 1, 4),
    ] {
        let report = verify_random_layer(cin, cout, kernel, 6, act_bits, 0.8, 7).expect("verify");
        println!(
            "  {label:<18} {} positions x {} outputs -> {}",
            report.positions_checked,
            report.outputs_checked,
            if report.is_bit_exact() {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        );
    }
}
