//! Regenerates the accuracy columns of Table II on the offline-trainable substitute
//! task (see DESIGN.md), and demonstrates the bit-exactness of the AP against the
//! quantized software model.
//!
//! Run with `cargo run -p camdnn-bench --bin accuracy --release`.

use camdnn::experiment::{BackendPlan, Session, SweepGrid};
use camdnn::verify::verify_random_layer;
use camdnn_bench::BenchCli;
use tnn::model::micro_cnn;
use tnn::train::accuracy_experiment;

fn main() {
    let cli = BenchCli::from_env();
    println!("Accuracy experiment (synthetic blob task, ternary MLP)\n");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "seed", "FP", "8-bit", "4-bit", "graph4"
    );
    let mut sums = [0.0f64; 4];
    let runs = 5;
    for seed in 0..runs {
        // The graph column scores the exported model batch-wise: the test set
        // is staged as one `tnn::dataset::Batch` and executed through
        // `tnn::infer::run_batch` instead of a per-sample loop.
        let columns = accuracy_experiment(100 + seed).expect("accuracy experiment");
        println!(
            "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            seed,
            columns.fp * 100.0,
            columns.q8 * 100.0,
            columns.q4 * 100.0,
            columns.graph4 * 100.0
        );
        sums[0] += columns.fp;
        sums[1] += columns.q8;
        sums[2] += columns.q4;
        sums[3] += columns.graph4;
    }
    println!(
        "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
        "mean",
        sums[0] / runs as f64 * 100.0,
        sums[1] / runs as f64 * 100.0,
        sums[2] / runs as f64 * 100.0,
        sums[3] / runs as f64 * 100.0
    );

    println!("\nBit-exactness of the associative processor vs the quantized reference:");
    for (label, cin, cout, kernel, act_bits) in [
        ("3x3 conv, 4-bit", 3usize, 8usize, 3usize, 4u8),
        ("3x3 conv, 8-bit", 2, 6, 3, 8),
        ("1x1 conv, 4-bit", 8, 8, 1, 4),
    ] {
        let report = verify_random_layer(cin, cout, kernel, 6, act_bits, 0.8, 7).expect("verify");
        println!(
            "  {label:<18} {} positions x {} outputs -> {}",
            report.positions_checked,
            report.outputs_checked,
            if report.is_bit_exact() {
                "bit-exact"
            } else {
                "MISMATCH"
            }
        );
    }

    // End-to-end: the `functional` backend executes whole networks on the
    // word-parallel AP engine and pins every sample's logits to `tnn::infer`.
    // The batch axis packs B samples into shared bit-plane arrays, so the
    // sweep traces the throughput curve next to the accuracy evidence.
    println!("\nEnd-to-end functional execution (word-parallel AP engine, batched):");
    let grid = SweepGrid::new()
        .workloads([
            micro_cnn("micro s=.80", 8, 0.80, 1),
            micro_cnn("micro s=.90", 8, 0.90, 2),
        ])
        .act_bits([4, 8])
        .batch_sizes([1, 16])
        .backends([BackendPlan::functional()]);
    let session = Session::new();
    let results = session.run(&grid).expect("functional sweep");
    for scenario in results.scenarios() {
        let record = results
            .get(scenario, "functional")
            .expect("functional record");
        let (checked, mismatched, exact) = match (
            record.report.as_functional(),
            record.report.as_functional_batch(),
        ) {
            (Some(report), _) => (
                report.checked_values,
                report.mismatched_values,
                report.is_bit_exact(),
            ),
            (_, Some(batch)) => (
                batch.samples.iter().map(|s| s.checked_values).sum(),
                batch.samples.iter().map(|s| s.mismatched_values).sum(),
                batch.is_bit_exact(),
            ),
            _ => unreachable!("functional records are functional reports"),
        };
        println!(
            "  {scenario:<28} b{:<3} {checked:>6} values checked, {mismatched} mismatches -> {}; {:>10.0} samples/s, {:.2e} J/sample",
            record.batch_size,
            if exact { "bit-exact" } else { "MISMATCH" },
            record.samples_per_s,
            record.joules_per_sample,
        );
    }
    cli.finish();
}
