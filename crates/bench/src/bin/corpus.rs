//! Golden workload corpus runner: pass/fail/diverged-at per checked-in spec.
//!
//! Loads every `tests/corpus/*.json` workload, executes it through **both**
//! functional engines (compiled plans and the reference interpreter), diffs
//! the execution traces record-by-record, and checks the plan trace and
//! logits digests against the spec's goldens. One line per spec reports
//! `pass`, a digest mismatch, or the exact first diverging record when the
//! engines disagree.
//!
//! Run with `cargo run -p camdnn-bench --bin corpus`; pass `--bless` to
//! rewrite every spec's goldens from the current execution (CI runs a bless
//! and requires a clean diff, so blessing is always safe to re-run).

use camdnn::corpus::{load_specs, run_spec};
use camdnn_bench::BenchCli;

fn main() {
    let cli = BenchCli::from_env();
    let bless = std::env::args().any(|arg| arg == "--bless");
    let entries = match load_specs() {
        Ok(entries) => entries,
        Err(error) => {
            eprintln!("corpus: {error}");
            std::process::exit(2);
        }
    };
    if entries.is_empty() {
        eprintln!("corpus: no specs found in tests/corpus/");
        std::process::exit(2);
    }

    println!(
        "Golden workload corpus ({} specs{})\n",
        entries.len(),
        if bless { ", blessing" } else { "" }
    );
    let mut failures = 0usize;
    for entry in &entries {
        let spec = &entry.spec;
        let label = format!(
            "{} [{} c{} {}b batch{} grid{}x{}]",
            spec.name,
            spec.family,
            spec.channels,
            spec.act_bits,
            spec.batch,
            spec.grid.first().copied().unwrap_or(0),
            spec.grid.get(1).copied().unwrap_or(0),
        );
        let run = match run_spec(spec) {
            Ok(run) => run,
            Err(error) => {
                failures += 1;
                println!("{label:<52} ERROR: {error}");
                continue;
            }
        };
        if bless {
            // Engine divergence is never blessed away: the goldens pin what
            // both engines agree on.
            if let Some(divergence) = &run.divergence {
                failures += 1;
                println!("{label:<52} DIVERGED (not blessed): {divergence}");
                continue;
            }
            let blessed = spec.blessed(&run);
            if let Err(error) = std::fs::write(&entry.path, blessed.to_json()) {
                failures += 1;
                println!("{label:<52} ERROR: cannot write goldens: {error}");
                continue;
            }
            let changed = blessed.golden != spec.golden;
            println!(
                "{label:<52} blessed{}",
                if changed {
                    " (updated)"
                } else {
                    " (unchanged)"
                }
            );
            continue;
        }
        let status = spec.check(&run);
        if !status.is_pass() {
            failures += 1;
        }
        println!("{label:<52} {status}");
    }
    if bless {
        println!("\nGoldens written to tests/corpus/.");
    }
    // Snapshot before the failure exit so a red run still writes metrics.
    cli.finish();
    if failures > 0 {
        eprintln!("\ncorpus: {failures} spec(s) failed");
        std::process::exit(1);
    }
}
