//! Regenerates Fig. 4: layer-by-layer energy and latency of ResNet-18 for the
//! `unroll` and `unroll+CSE` configurations next to the crossbar baseline, broken
//! into DFG / accumulation / peripherals / data-movement components.
//!
//! One scenario, three backends — the per-layer series are read out of the
//! structured backend reports instead of re-compiling layer by layer.
//!
//! Run with `cargo run -p camdnn-bench --bin fig4 --release`; add
//! `--json <path>` to dump the raw records as JSON lines (see `BENCH_schema.md`).

use camdnn::experiment::{BackendPlan, Session, SweepGrid};
use camdnn::BackendKind;
use camdnn_bench::BenchCli;
use tnn::model::resnet18;

fn main() {
    let cli = BenchCli::from_env();
    let act_bits = 4u8;
    let grid = SweepGrid::new()
        .workload(resnet18(0.8, 7))
        .act_bits([act_bits])
        .backends([
            BackendPlan::rtm_ap(),
            BackendPlan::rtm_ap_unroll(),
            BackendPlan::crossbar(),
        ]);
    let session = Session::new();
    let results = session.run(&grid).expect("the Fig. 4 scenario compiles");
    let scenario = results.scenarios()[0].to_string();
    let report = |kind: BackendKind| &results.get(&scenario, kind).expect("record").report;
    let cse = report(BackendKind::RtmAp).as_rtm_ap().expect("rtm-ap");
    let unroll = report(BackendKind::RtmApUnroll)
        .as_rtm_ap()
        .expect("rtm-ap unroll");
    let crossbar = report(BackendKind::Crossbar)
        .as_crossbar()
        .expect("crossbar");

    println!("Fig. 4 — ResNet-18 layer-by-layer comparison (4-bit activations)\n");
    println!(
        "{:<28} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "layer",
        "unroll[uJ]",
        "cse[uJ]",
        "xbar[uJ]",
        "unroll[us]",
        "cse[us]",
        "xbar[us]",
        "dfg%",
        "accum%",
        "move%"
    );

    let mut totals = [0.0f64; 6];
    for (i, report_cse) in cse.layers.iter().enumerate() {
        let report_unroll = &unroll.layers[i];
        let e_cse = report_cse.energy.total_fj() * 1e-9;
        let e_unroll = report_unroll.energy.total_fj() * 1e-9;
        let e_xbar = crossbar.layer_energy_fj[i] * 1e-9;
        let l_cse = report_cse.latency.total_ns() * 1e-3;
        let l_unroll = report_unroll.latency.total_ns() * 1e-3;
        let l_xbar = crossbar.layer_latency_ns[i] * 1e-3;
        totals[0] += e_unroll;
        totals[1] += e_cse;
        totals[2] += e_xbar;
        totals[3] += l_unroll;
        totals[4] += l_cse;
        totals[5] += l_xbar;

        let total = report_cse.energy.total_fj().max(1.0);
        println!(
            "{:<28} | {:>9.2} {:>9.2} {:>9.2} | {:>9.1} {:>9.1} {:>9.1} | {:>7.1}% {:>7.1}% {:>7.1}%",
            report_cse.name,
            e_unroll,
            e_cse,
            e_xbar,
            l_unroll,
            l_cse,
            l_xbar,
            report_cse.energy.dfg_fj / total * 100.0,
            report_cse.energy.accumulation_fj / total * 100.0,
            report_cse.energy.data_movement_fj / total * 100.0,
        );
    }
    println!(
        "\ntotals: unroll {:.1} uJ / {:.2} ms, unroll+CSE {:.1} uJ / {:.2} ms, crossbar {:.1} uJ / {:.2} ms",
        totals[0],
        totals[3] * 1e-3,
        totals[1],
        totals[4] * 1e-3,
        totals[2],
        totals[5] * 1e-3
    );
    cli.write_results(&results);
    cli.finish();
}
