//! Regenerates Fig. 4: layer-by-layer energy and latency of ResNet-18 for the
//! `unroll` and `unroll+CSE` configurations next to the crossbar baseline, broken
//! into DFG / accumulation / peripherals / data-movement components.
//!
//! Run with `cargo run -p camdnn-bench --bin fig4 --release`.

use accel::{AcceleratorModel, ArchConfig};
use apc::{CompilerOptions, LayerCompiler};
use baseline::CrossbarModel;
use tnn::model::resnet18;

fn main() {
    let act_bits = 4u8;
    let model = resnet18(0.8, 7);
    let layers = model.conv_like_layers();
    let accelerator = AcceleratorModel::new(ArchConfig::default());
    let crossbar = CrossbarModel::default();
    let cse = LayerCompiler::new(CompilerOptions::default().with_act_bits(act_bits));
    let unroll = LayerCompiler::new(CompilerOptions::unroll_only().with_act_bits(act_bits));

    println!("Fig. 4 — ResNet-18 layer-by-layer comparison (4-bit activations)\n");
    println!(
        "{:<28} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "layer",
        "unroll[uJ]",
        "cse[uJ]",
        "xbar[uJ]",
        "unroll[us]",
        "cse[us]",
        "xbar[us]",
        "dfg%",
        "accum%",
        "move%"
    );

    let mut totals = [0.0f64; 6];
    for layer in &layers {
        let compiled_cse = cse.compile(layer).expect("compile");
        let compiled_unroll = unroll.compile(layer).expect("compile");
        let report_cse = accelerator.simulate_layer(&compiled_cse);
        let report_unroll = accelerator.simulate_layer(&compiled_unroll);
        let (xbar_energy, xbar_latency) = crossbar.evaluate_layer(layer, act_bits);

        let e_cse = report_cse.energy.total_fj() * 1e-9;
        let e_unroll = report_unroll.energy.total_fj() * 1e-9;
        let e_xbar = xbar_energy * 1e-9;
        let l_cse = report_cse.latency.total_ns() * 1e-3;
        let l_unroll = report_unroll.latency.total_ns() * 1e-3;
        let l_xbar = xbar_latency * 1e-3;
        totals[0] += e_unroll;
        totals[1] += e_cse;
        totals[2] += e_xbar;
        totals[3] += l_unroll;
        totals[4] += l_cse;
        totals[5] += l_xbar;

        let total = report_cse.energy.total_fj().max(1.0);
        println!(
            "{:<28} | {:>9.2} {:>9.2} {:>9.2} | {:>9.1} {:>9.1} {:>9.1} | {:>7.1}% {:>7.1}% {:>7.1}%",
            layer.name,
            e_unroll,
            e_cse,
            e_xbar,
            l_unroll,
            l_cse,
            l_xbar,
            report_cse.energy.dfg_fj / total * 100.0,
            report_cse.energy.accumulation_fj / total * 100.0,
            report_cse.energy.data_movement_fj / total * 100.0,
        );
    }
    println!(
        "\ntotals: unroll {:.1} uJ / {:.2} ms, unroll+CSE {:.1} uJ / {:.2} ms, crossbar {:.1} uJ / {:.2} ms",
        totals[0],
        totals[3] * 1e-3,
        totals[1],
        totals[4] * 1e-3,
        totals[2],
        totals[5] * 1e-3
    );
}
