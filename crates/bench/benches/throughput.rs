//! Criterion benchmark: batched vs sequential functional inference.
//!
//! This is the acceptance benchmark of the batched execution path: packing
//! B = 64 samples' (tile × row group) units into shared bit-plane arrays must
//! deliver at least 2× the samples/s of evaluating the same 64 inputs one at
//! a time on `micro_cnn`. (The floor was 4× against the interpreting engine;
//! compiled pass plans accelerate the batch-of-one baseline ~3× while the
//! already-amortized batched path gains ~16%, so the guarded ratio shrank —
//! batched samples/s itself went up, see `BENCH_throughput.json`.) Both paths produce value-identical logits (pinned
//! by the `batch_equivalence` suite); only the packing differs. The
//! `batch_speedup` function reports the measured ratio directly, next to the
//! hardware-model throughput (`samples_per_s`) the reports derive from the
//! executed cycle counters, and appends a dated record (including the plan
//! cache summary of the shared compile cache) to `BENCH_throughput.json` at
//! the repo root (schema: `BENCH_schema.md`).

use apc::CompileCache;
use camdnn::FunctionalBackend;
use camdnn_bench::{
    append_bench_record, bench_smoke, utc_date_string, LatencyHistogram, ThroughputBenchRecord,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use tnn::model::{micro_cnn, ModelGraph};
use tnn::Tensor;

const BATCH: usize = 64;

/// Batch size of the timed head-to-head: the full 64, or 8 under
/// `BENCH_SMOKE` so CI can exercise the measurement and record-emission path
/// quickly.
fn timed_batch() -> usize {
    if bench_smoke() {
        8
    } else {
        BATCH
    }
}

fn workload() -> ModelGraph {
    micro_cnn("throughput-micro", 8, 0.8, 42)
}

/// The 64 per-slot inputs the backend would stage for its base seed.
fn batch_inputs(model: &ModelGraph) -> Vec<Tensor<i64>> {
    (0..BATCH)
        .map(|sample| FunctionalBackend::input_for_sample(model, 4, 0, sample))
        .collect()
}

/// Runs every input as its own batch of one (the sequential baseline),
/// recording each call's wall-clock latency.
fn run_sequential(
    backend: &FunctionalBackend,
    model: &ModelGraph,
    inputs: &[Tensor<i64>],
    cache: &CompileCache,
    histogram: &mut LatencyHistogram,
) {
    for input in inputs {
        let start = Instant::now();
        black_box(
            backend
                .run_batch(model, std::slice::from_ref(input), cache)
                .expect("sequential run"),
        );
        histogram.record(start.elapsed());
    }
}

fn bench_sequential(c: &mut Criterion) {
    let model = workload();
    let backend = FunctionalBackend::default();
    let cache = CompileCache::new();
    let inputs = batch_inputs(&model);
    let mut group = c.benchmark_group("micro_cnn_64_samples");
    group.sample_size(10);
    group.bench_function("sequential_b1", |b| {
        b.iter(|| {
            run_sequential(
                &backend,
                &model,
                &inputs,
                &cache,
                &mut LatencyHistogram::new(),
            )
        })
    });
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let model = workload();
    let backend = FunctionalBackend::default();
    let cache = CompileCache::new();
    let inputs = batch_inputs(&model);
    let mut group = c.benchmark_group("micro_cnn_64_samples");
    group.sample_size(10);
    group.bench_function("batched_b64", |b| {
        b.iter(|| {
            black_box(
                backend
                    .run_batch(&model, black_box(&inputs), &cache)
                    .expect("batched run"),
            )
        })
    });
    group.finish();
}

/// Times both paths head to head on the identical 64 inputs and prints the
/// wall-clock samples/s ratio (the ≥4× acceptance figure of the batched
/// pipeline) next to the modeled throughput.
fn batch_speedup(_c: &mut Criterion) {
    let smoke = bench_smoke();
    let batch = timed_batch();
    let model = workload();
    let backend = FunctionalBackend::default();
    let cache = CompileCache::new();
    let inputs = &batch_inputs(&model)[..batch];
    // Warm-up compiles every layer into the shared cache and faults in both
    // paths once, so neither timed loop pays compilation.
    run_sequential(
        &backend,
        &model,
        &inputs[..1],
        &cache,
        &mut LatencyHistogram::new(),
    );
    let batched_report = backend.run_batch(&model, inputs, &cache).expect("batch");

    // Per-call wall-clock latency distributions of both paths accumulate in
    // the shared log-bucketed histogram across iterations. Recording costs
    // ~100 ns against ~1 ms calls, so the timed ratio is unaffected.
    let mut sequential_latency = LatencyHistogram::new();
    let mut batched_latency = LatencyHistogram::new();
    let iters = if smoke { 1u32 } else { 3 };
    let start = Instant::now();
    for _ in 0..iters {
        run_sequential(&backend, &model, inputs, &cache, &mut sequential_latency);
    }
    let sequential = start.elapsed().as_secs_f64() / f64::from(iters);
    let start = Instant::now();
    for _ in 0..iters {
        let call = Instant::now();
        black_box(
            backend
                .run_batch(&model, black_box(inputs), &cache)
                .expect("batched run"),
        );
        batched_latency.record(call.elapsed());
    }
    let batched = start.elapsed().as_secs_f64() / f64::from(iters);
    let speedup = sequential / batched;
    println!(
        "batch_speedup: sequential {:.1} samples/s, batched {:.1} samples/s -> {:.1}x \
         (modeled: {:.1} samples/s, {:.3e} J/sample)",
        batch as f64 / sequential,
        batch as f64 / batched,
        speedup,
        batched_report.samples_per_s,
        batched_report.joules_per_sample,
    );
    let summary = cache.plan_summary();
    println!(
        "  plan cache: {} plans ({} fallbacks), {} -> {} passes after fusion, \
         {} hits / {} misses",
        summary.plans,
        summary.fallbacks,
        summary.passes_before_fusion,
        summary.passes_after_fusion,
        summary.hits,
        summary.misses,
    );
    append_bench_record(
        "BENCH_throughput.json",
        &ThroughputBenchRecord {
            date: utc_date_string(),
            bench: "throughput".to_string(),
            batch,
            sequential_samples_per_s: batch as f64 / sequential,
            batched_samples_per_s: batch as f64 / batched,
            batch_speedup: speedup,
            modeled_samples_per_s: batched_report.samples_per_s,
            joules_per_sample: batched_report.joules_per_sample,
            smoke,
            plan_cache: summary,
        },
    );
    println!("  sequential per-call: {}", sequential_latency.summary_ms());
    println!("  batched   per-call: {}", batched_latency.summary_ms());
    // The acceptance criterion of the batched pipeline, enforced whenever
    // the bench actually runs (CI smokes it with BENCH_SMOKE=1 and the floor
    // zeroed; run it locally for real figures). The default floor is 2× with
    // the compiled-plan engine: plans sped the sequential baseline up ~3×
    // while the batched path — whose interpreter overhead was already
    // amortized across 64 samples — gains ~16%, so packing still wins but by
    // a smaller ratio than against the interpreter (4×, the old default).
    // Wall-clock ratios can dip on heavily loaded machines — override the
    // floor with THROUGHPUT_SPEEDUP_MIN (e.g. `THROUGHPUT_SPEEDUP_MIN=0`).
    let floor: f64 = std::env::var("THROUGHPUT_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    assert!(
        speedup >= floor,
        "batched execution must reach >={floor}x the sequential samples/s at B={batch}, \
         measured {speedup:.1}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sequential, bench_batched, batch_speedup
}
criterion_main!(benches);
