//! Criterion benchmark: scalar [`ApController`] vs word-parallel [`ApEngine`]
//! vs compiled [`ap::PassPlan`]s executing the compiled slice programs of a
//! convolution layer.
//!
//! Two acceptance figures share this work list. The bit-plane rewrite: on a
//! full-height (256-row) array the interpreting engine must run the same
//! programs ≥20× faster than the scalar ground truth (`ENGINE_SPEEDUP_MIN`).
//! The pass-plan compiler: executing plans compiled once from those programs
//! must beat the interpreter ≥3× (`PLAN_SPEEDUP_MIN`). All three executions
//! are bit-identical (pinned by the `engine_equivalence` suite); only the
//! substrate differs. The `engine_speedup` function measures all three head
//! to head, prints both ratios, and appends a dated record to
//! `BENCH_engine.json` at the repo root (schema: `BENCH_schema.md`).

use ap::{ApController, ApEngine, Operand, PassPlan, PlanGeometry};
use apc::{CompileCache, CompiledLayer, CompilerOptions, LayerCompiler};
use cam::{BitPlaneArray, CamArray, CamTechnology};
use camdnn_bench::{append_bench_record, bench_smoke, utc_date_string, EngineBenchRecord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use tnn::model::ConvLayerInfo;
use tnn::TernaryTensor;

/// A small but realistic 3×3 convolution layer, compiled with retained
/// instruction streams.
fn compiled_conv_layer() -> (ConvLayerInfo, CompiledLayer) {
    let layer = ConvLayerInfo {
        node_id: 0,
        name: "bench-conv".to_string(),
        cin: 2,
        cout: 8,
        kernel: (3, 3),
        stride: 1,
        padding: 1,
        input_hw: (16, 16),
        output_hw: (16, 16),
        weights: TernaryTensor::random(vec![8, 2, 3, 3], 0.5, 42),
    };
    let compiled = LayerCompiler::new(CompilerOptions::default().with_programs())
        .compile(&layer)
        .expect("compile");
    (layer, compiled)
}

/// Stages deterministic activations into an executor through the given loader.
fn stage<F: FnMut(&Operand, &[i64])>(compiled: &CompiledLayer, rows: usize, mut load: F) {
    let layout = &compiled.layout;
    for slice in compiled.slices.as_ref().expect("programs").iter() {
        if slice.tile != 0 {
            continue;
        }
        for k in 0..layout.patch_size {
            let values: Vec<i64> = (0..rows)
                .map(|row| (row as i64 * 7 + k as i64) % (1 << layout.act_bits))
                .collect();
            let operand = Operand::new(
                k,
                layout.channel_domain_base(slice.channel_in_group),
                layout.act_bits,
                false,
            );
            load(&operand, &values);
        }
    }
}

fn scalar_controller(compiled: &CompiledLayer) -> ApController {
    let g = compiled.layout.geometry;
    let mut controller = ApController::new(
        CamArray::new(g.rows, g.cols, g.domains, CamTechnology::default()).expect("array"),
    );
    stage(compiled, g.rows, |operand, values| {
        controller.load_column(operand, values).expect("load")
    });
    controller
}

fn bitplane_engine(compiled: &CompiledLayer) -> ApEngine {
    let g = compiled.layout.geometry;
    let mut engine = ApEngine::new(
        BitPlaneArray::new(g.rows, g.cols, g.domains, CamTechnology::default()).expect("array"),
    );
    stage(compiled, g.rows, |operand, values| {
        engine.load_column(operand, values).expect("load")
    });
    engine
}

/// One execution unit: the tile-0 prologue plus every tile-0 slice program.
fn tile0_work(compiled: &CompiledLayer, cout: usize) -> Vec<ap::ApProgram> {
    let layout = &compiled.layout;
    let mut programs = vec![apc::codegen::tile_prologue(
        layout,
        layout.tile_range(0, cout).len(),
    )];
    for slice in compiled.slices.as_ref().expect("programs") {
        if slice.tile == 0 {
            programs.push(slice.program.clone());
        }
    }
    programs
}

/// The work list lowered once into pass plans through the shared cache (the
/// production path: compiled alongside the programs, reused every run).
fn compiled_plans(
    cache: &CompileCache,
    engine: &ApEngine,
    programs: &[ap::ApProgram],
) -> Vec<Arc<PassPlan>> {
    let geometry = PlanGeometry::of(engine.array());
    programs
        .iter()
        .map(|program| cache.plan(program, geometry))
        .collect()
}

fn bench_scalar_controller(c: &mut Criterion) {
    let (layer, compiled) = compiled_conv_layer();
    let programs = tile0_work(&compiled, layer.cout);
    let mut controller = scalar_controller(&compiled);
    let mut group = c.benchmark_group("conv_layer_tile0_256_rows");
    group.sample_size(10);
    group.bench_function("scalar_controller", |b| {
        b.iter(|| {
            for program in &programs {
                controller.run(black_box(program)).expect("run");
            }
        })
    });
    group.finish();
}

fn bench_bitplane_engine(c: &mut Criterion) {
    let (layer, compiled) = compiled_conv_layer();
    let programs = tile0_work(&compiled, layer.cout);
    let mut engine = bitplane_engine(&compiled);
    let mut group = c.benchmark_group("conv_layer_tile0_256_rows");
    group.sample_size(10);
    group.bench_function("bitplane_engine", |b| {
        b.iter(|| {
            for program in &programs {
                engine.run(black_box(program)).expect("run");
            }
        })
    });
    group.finish();
}

fn bench_plan_engine(c: &mut Criterion) {
    let (layer, compiled) = compiled_conv_layer();
    let programs = tile0_work(&compiled, layer.cout);
    let mut engine = bitplane_engine(&compiled);
    let cache = CompileCache::new();
    let plans = compiled_plans(&cache, &engine, &programs);
    let mut group = c.benchmark_group("conv_layer_tile0_256_rows");
    group.sample_size(10);
    group.bench_function("pass_plans", |b| {
        b.iter(|| {
            for plan in &plans {
                engine.run_plan(black_box(plan)).expect("run");
            }
        })
    });
    group.finish();
}

/// Times all three substrates head to head on the identical work list and
/// prints both acceptance ratios: scalar→interpreter (the ≥20× bit-plane
/// figure) and interpreter→plan (the ≥3× pass-plan figure). Appends the
/// measurements as one dated record to `BENCH_engine.json` at the repo root.
fn engine_speedup(_c: &mut Criterion) {
    let smoke = bench_smoke();
    let (layer, compiled) = compiled_conv_layer();
    let programs = tile0_work(&compiled, layer.cout);
    let mut controller = scalar_controller(&compiled);
    let mut engine = bitplane_engine(&compiled);
    let cache = CompileCache::new();
    let plans = compiled_plans(&cache, &engine, &programs);
    assert_eq!(
        cache.plan_summary().fallbacks,
        0,
        "bench programs must specialize"
    );
    // Warm-up once each.
    for (program, plan) in programs.iter().zip(&plans) {
        controller.run(program).expect("run");
        engine.run(program).expect("run");
        engine.run_plan(plan).expect("run");
    }
    let scalar_iters = if smoke { 1u32 } else { 3 };
    let start = Instant::now();
    for _ in 0..scalar_iters {
        for program in &programs {
            controller.run(black_box(program)).expect("run");
        }
    }
    let scalar = start.elapsed().as_secs_f64() / f64::from(scalar_iters);
    let packed_iters = if smoke { 5u32 } else { 50 };
    let start = Instant::now();
    for _ in 0..packed_iters {
        for program in &programs {
            engine.run(black_box(program)).expect("run");
        }
    }
    let packed = start.elapsed().as_secs_f64() / f64::from(packed_iters);
    let plan_iters = if smoke { 5u32 } else { 50 };
    let start = Instant::now();
    for _ in 0..plan_iters {
        for plan in &plans {
            engine.run_plan(black_box(plan)).expect("run");
        }
    }
    let planned = start.elapsed().as_secs_f64() / f64::from(plan_iters);
    let speedup = scalar / packed;
    let plan_speedup = packed / planned;
    let summary = cache.plan_summary();
    println!(
        "engine_speedup: scalar {:.3} ms/iter, bit-plane {:.3} ms/iter -> {:.1}x",
        scalar * 1e3,
        packed * 1e3,
        speedup
    );
    println!(
        "plan_speedup: interpreter {:.3} ms/iter, pass plans {:.3} ms/iter -> {:.1}x \
         ({} plans, {} -> {} passes after fusion)",
        packed * 1e3,
        planned * 1e3,
        plan_speedup,
        summary.plans,
        summary.passes_before_fusion,
        summary.passes_after_fusion,
    );
    append_bench_record(
        "BENCH_engine.json",
        &EngineBenchRecord {
            date: utc_date_string(),
            bench: "engine".to_string(),
            scalar_ms_per_iter: scalar * 1e3,
            interpreter_ms_per_iter: packed * 1e3,
            plan_ms_per_iter: planned * 1e3,
            engine_speedup: speedup,
            plan_speedup,
            smoke,
            plan_cache: summary,
        },
    );
    // The acceptance criteria, enforced whenever the bench actually runs
    // (CI smokes it with BENCH_SMOKE=1 and the floors zeroed; run it locally
    // for real figures). Wall-clock ratios can dip on heavily loaded machines
    // — override the floors with ENGINE_SPEEDUP_MIN / PLAN_SPEEDUP_MIN
    // (e.g. `ENGINE_SPEEDUP_MIN=0` to disable).
    let floor: f64 = std::env::var("ENGINE_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    assert!(
        speedup >= floor,
        "bit-plane engine must be >={floor}x faster than the scalar controller, measured {speedup:.1}x"
    );
    let plan_floor: f64 = std::env::var("PLAN_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    assert!(
        plan_speedup >= plan_floor,
        "compiled pass plans must be >={plan_floor}x faster than the interpreter, measured {plan_speedup:.1}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scalar_controller, bench_bitplane_engine, bench_plan_engine, engine_speedup
}
criterion_main!(benches);
