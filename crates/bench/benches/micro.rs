//! Criterion micro-benchmarks of the substrate: CAM searches, bit-serial AP
//! arithmetic and the functional controller.

use ap::{ApController, ApInstruction, CarrySlot, CostModel, Operand};
use cam::{CamArray, CamTechnology, SearchKey};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cam_search(c: &mut Criterion) {
    let mut array = CamArray::new(256, 8, 16, CamTechnology::default()).expect("array");
    for row in 0..256 {
        array.write_bit(0, row, 0, row % 2 == 0).expect("write");
        array.write_bit(1, row, 0, row % 3 == 0).expect("write");
    }
    array.align_column(0, 0).expect("align");
    array.align_column(1, 0).expect("align");
    let key = SearchKey::new().with(0, true).with(1, false);
    c.bench_function("cam_masked_search_256_rows", |b| {
        b.iter(|| black_box(array.search(black_box(&key)).expect("search")))
    });
}

fn bench_ap_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("ap_bit_serial_add");
    for &width in &[4u8, 8, 16] {
        group.bench_function(format!("in_place_{width}bit_256_rows"), |b| {
            let array = CamArray::new(256, 4, 48, CamTechnology::default()).expect("array");
            let mut ap = ApController::new(array);
            let a = Operand::new(0, 0, width, false);
            let acc = Operand::new(1, 0, width + 4, true);
            let values: Vec<i64> = (0..256).map(|i| i % (1 << width.min(8))).collect();
            ap.load_column(&a, &values).expect("load");
            ap.load_column(&acc, &vec![0; 256]).expect("load");
            let add = ApInstruction::AddInPlace {
                a,
                acc,
                carry: CarrySlot::new(2, 0),
            };
            b.iter(|| ap.execute(black_box(&add)).expect("execute"));
        });
    }
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let model = CostModel::new(CamTechnology::default(), 256);
    let add = ApInstruction::AddInPlace {
        a: Operand::new(0, 0, 4, false),
        acc: Operand::new(1, 0, 12, true),
        carry: CarrySlot::new(2, 0),
    };
    c.bench_function("cost_model_in_place_add", |b| {
        b.iter(|| black_box(model.instruction_cost(black_box(&add))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cam_search, bench_ap_add, bench_cost_model
}
criterion_main!(benches);
