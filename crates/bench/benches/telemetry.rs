//! Criterion benchmark: the telemetry spine's cost contract on the engine
//! hot loop.
//!
//! `ApEngine::run_plan` is the instrumented production entry point; its
//! uninstrumented twin `run_plan_raw` is the baseline. With recording
//! **off** the instrumented path does one relaxed atomic load per run and
//! must stay within `TELEMETRY_OVERHEAD_MAX` (default 3%) of the raw twin —
//! the disabled-path near-zero-cost contract of `camdnn::telemetry`. The
//! bench also measures the recording-**on** cost for context (not
//! asserted: enabled-mode cost is a feature trade-off, not a contract),
//! prints all three, and appends a dated record to `BENCH_telemetry.json`
//! at the repo root (schema: `BENCH_schema.md`).
//!
//! Wall-clock ratios on loaded machines are noisy; the measurement takes
//! the best of several repetitions for both sides, and CI smokes the path
//! with the floor disabled (`TELEMETRY_OVERHEAD_MAX=1000`).

use ap::{ApEngine, Operand, PassPlan, PlanGeometry};
use apc::{CompileCache, CompiledLayer, CompilerOptions, LayerCompiler};
use cam::{BitPlaneArray, CamTechnology};
use camdnn::telemetry;
use camdnn_bench::{append_bench_record, bench_smoke, utc_date_string, TelemetryBenchRecord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use tnn::model::ConvLayerInfo;
use tnn::TernaryTensor;

/// The same small-but-realistic 3×3 convolution work list as
/// `benches/engine.rs`: tile-0 prologue plus every tile-0 slice program,
/// lowered once into pass plans.
fn work_list() -> (ApEngine, Vec<Arc<PassPlan>>) {
    let layer = ConvLayerInfo {
        node_id: 0,
        name: "telemetry-conv".to_string(),
        cin: 2,
        cout: 8,
        kernel: (3, 3),
        stride: 1,
        padding: 1,
        input_hw: (16, 16),
        output_hw: (16, 16),
        weights: TernaryTensor::random(vec![8, 2, 3, 3], 0.5, 42),
    };
    let compiled: CompiledLayer = LayerCompiler::new(CompilerOptions::default().with_programs())
        .compile(&layer)
        .expect("compile");
    let layout = &compiled.layout;
    let g = layout.geometry;
    let mut engine = ApEngine::new(
        BitPlaneArray::new(g.rows, g.cols, g.domains, CamTechnology::default()).expect("array"),
    );
    let slices = compiled.slices.as_ref().expect("programs");
    for slice in slices.iter().filter(|s| s.tile == 0) {
        for k in 0..layout.patch_size {
            let values: Vec<i64> = (0..g.rows)
                .map(|row| (row as i64 * 7 + k as i64) % (1 << layout.act_bits))
                .collect();
            let operand = Operand::new(
                k,
                layout.channel_domain_base(slice.channel_in_group),
                layout.act_bits,
                false,
            );
            engine.load_column(&operand, &values).expect("load");
        }
    }
    let mut programs = vec![apc::codegen::tile_prologue(
        layout,
        layout.tile_range(0, layer.cout).len(),
    )];
    for slice in slices.iter().filter(|s| s.tile == 0) {
        programs.push(slice.program.clone());
    }
    let cache = CompileCache::new();
    let geometry = PlanGeometry::of(engine.array());
    let plans = programs
        .iter()
        .map(|program| cache.plan(program, geometry))
        .collect();
    (engine, plans)
}

/// Best-of-`reps` wall-clock seconds for `iters` work-list iterations of
/// `body` (best-of filters scheduler noise better than the mean).
fn best_of(reps: u32, iters: u32, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            body();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

/// Measures raw twin vs instrumented entry (recording off, then on) on the
/// identical plan work list and pins the disabled-path overhead below
/// `TELEMETRY_OVERHEAD_MAX`.
fn telemetry_overhead(_c: &mut Criterion) {
    let smoke = bench_smoke();
    let (mut engine, plans) = work_list();
    // The contract under test is the *disabled* path.
    telemetry::set_enabled(false);
    telemetry::reset();
    // Warm up both paths.
    for plan in &plans {
        engine.run_plan_raw(plan).expect("run");
        engine.run_plan(plan).expect("run");
    }
    let (reps, iters) = if smoke { (3u32, 5u32) } else { (7, 30) };
    let raw = best_of(reps, iters, || {
        for plan in &plans {
            engine.run_plan_raw(black_box(plan)).expect("run");
        }
    });
    let disabled = best_of(reps, iters, || {
        for plan in &plans {
            engine.run_plan(black_box(plan)).expect("run");
        }
    });
    telemetry::set_enabled(true);
    telemetry::reset();
    let enabled = best_of(reps, iters, || {
        for plan in &plans {
            engine.run_plan(black_box(plan)).expect("run");
        }
    });
    // The recorder actually recorded: every enabled run books its counters.
    let runs = telemetry::global().registry().counter("ap.plan.runs");
    assert!(runs > 0, "enabled runs must book ap.plan.runs");
    telemetry::set_enabled(false);
    telemetry::reset();

    let disabled_overhead = disabled / raw - 1.0;
    println!(
        "telemetry_overhead: raw {:.4} ms/iter, disabled {:.4} ms/iter ({:+.2}%), \
         enabled {:.4} ms/iter ({:+.2}%)",
        raw * 1e3,
        disabled * 1e3,
        disabled_overhead * 100.0,
        enabled * 1e3,
        (enabled / raw - 1.0) * 100.0,
    );
    append_bench_record(
        "BENCH_telemetry.json",
        &TelemetryBenchRecord {
            date: utc_date_string(),
            bench: "telemetry".to_string(),
            raw_ms_per_iter: raw * 1e3,
            disabled_ms_per_iter: disabled * 1e3,
            enabled_ms_per_iter: enabled * 1e3,
            disabled_overhead,
            smoke,
        },
    );
    // The acceptance criterion: near-zero disabled cost. Override the
    // ceiling with TELEMETRY_OVERHEAD_MAX (CI smokes with it effectively
    // disabled; run locally for real figures).
    let ceiling: f64 = std::env::var("TELEMETRY_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);
    assert!(
        disabled_overhead < ceiling,
        "disabled telemetry must cost < {:.1}% on the engine hot loop, measured {:+.2}%",
        ceiling * 100.0,
        disabled_overhead * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = telemetry_overhead
}
criterion_main!(benches);
