//! Criterion benchmark: fleet-simulator replay rate and the pipelining
//! acceptance figure.
//!
//! Two claims are measured:
//!
//! * the fleet simulator is a pure cost model — a saturating trace replays at
//!   millions of requests per wall-clock second, which is what makes
//!   million-user sweeps practical (`fleet_sim_replay` groups);
//! * cutting the model into two pipeline stages raises modeled samples/s at
//!   saturating fixed-fleet load by the bottleneck ratio (`fleet_speedup`,
//!   asserted ≥ 1.2× by default; override with `FLEET_SPEEDUP_MIN`, CI uses
//!   `FLEET_SPEEDUP_MIN=0` alongside `--no-run` compile checks).

use criterion::{criterion_group, criterion_main, Criterion};
use serve::{BatchingPolicy, FleetConfig, FleetSession, FleetStageModel, TraceSpec};
use tnn::model::micro_cnn;

const REQUESTS: usize = 4_096;

/// The profiled stage model and a saturating trace, shared by every target.
fn fixture(shards: usize) -> (FleetStageModel, FleetConfig, TraceSpec, serve::Trace) {
    let session = FleetSession::new();
    let grid = serve::FleetGrid::new()
        .workload(micro_cnn("fleet-bench", 8, 0.8, 42))
        .shards([shards]);
    let scenario = grid.scenarios().remove(0);
    // Reuse the session plumbing to profile and cut once, outside the timed
    // region.
    let report = session.run_scenario(&scenario).expect("probe run");
    let model = FleetStageModel {
        model: report.model.clone(),
        stages: report
            .stage_latency_ns
            .iter()
            .zip(&report.stage_tiles)
            .map(|(&latency_ns, &tiles)| serve::StageCost {
                latency_ns,
                energy_uj_per_sample: 0.01,
                tiles: tiles as usize,
            })
            .collect(),
    };
    let config = FleetConfig::default()
        .with_shards(shards)
        .with_batching(BatchingPolicy::new(8, 100))
        .with_slo_ms(0.05);
    let spec = TraceSpec::poisson(4_000_000.0, REQUESTS, 42);
    let trace = spec.generate().expect("trace");
    (model, config, spec, trace)
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_sim_replay_4096_requests");
    group.sample_size(10);
    for shards in [1usize, 2] {
        let (model, config, spec, trace) = fixture(shards);
        group.bench_function(format!("s{shards}_fixed"), |b| {
            b.iter(|| serve::simulate_fleet(&model, &config, &spec, &trace).expect("simulate"))
        });
    }
    group.finish();
}

/// Computes the 2-shard / 1-shard modeled samples/s ratio at saturating load
/// and asserts the pipelining acceptance floor.
fn fleet_speedup(_c: &mut Criterion) {
    let rates: Vec<f64> = [1usize, 2]
        .iter()
        .map(|&shards| {
            let (model, config, spec, trace) = fixture(shards);
            let report = serve::simulate_fleet(&model, &config, &spec, &trace).expect("simulate");
            assert_eq!(report.completed + report.rejected, REQUESTS as u64);
            report.samples_per_s
        })
        .collect();
    let speedup = rates[1] / rates[0];
    println!(
        "fleet_speedup: single stage {:.0} samples/s, 2-shard pipeline {:.0} samples/s -> \
         {speedup:.2}x",
        rates[0], rates[1]
    );
    // The pipelining acceptance criterion. Modeled (virtual-clock) rates are
    // deterministic, but the floor is still overridable for degenerate
    // profiles — CI compile-checks with FLEET_SPEEDUP_MIN=0.
    let floor: f64 = std::env::var("FLEET_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.2);
    assert!(
        speedup >= floor,
        "2-shard pipelining must reach >={floor}x the single-stage modeled samples/s at \
         saturating load, measured {speedup:.2}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replay, fleet_speedup
}
criterion_main!(benches);
