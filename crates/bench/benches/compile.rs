//! Criterion benchmarks of the compilation flow: CSE over a weight slice, full layer
//! compilation with and without CSE, and the accelerator-level simulation.

use accel::{AcceleratorModel, ArchConfig};
use apc::dfg::{Dfg, WeightSlice};
use apc::{CompilerOptions, LayerCompiler};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tnn::model::vgg9;

fn bench_cse(c: &mut Criterion) {
    let model = vgg9(0.85, 1);
    let layer = &model.conv_like_layers()[1];
    let slice = WeightSlice::from_layer_channel(layer, 0, 0..layer.cout).expect("slice");
    c.bench_function("cse_64_output_slice", |b| {
        b.iter(|| {
            let mut dfg = Dfg::from_slice(black_box(&slice));
            dfg.apply_cse().expect("cse");
            black_box(dfg.op_count().total())
        })
    });
}

fn bench_layer_compile(c: &mut Criterion) {
    let model = vgg9(0.85, 1);
    let layer = model.conv_like_layers()[1].clone();
    let mut group = c.benchmark_group("layer_compile_vgg9_conv2");
    group.sample_size(10);
    group.bench_function("unroll", |b| {
        let compiler = LayerCompiler::new(CompilerOptions::unroll_only());
        b.iter(|| black_box(compiler.compile(black_box(&layer)).expect("compile").stats))
    });
    group.bench_function("unroll_cse", |b| {
        let compiler = LayerCompiler::new(CompilerOptions::default());
        b.iter(|| black_box(compiler.compile(black_box(&layer)).expect("compile").stats))
    });
    group.finish();
}

fn bench_accelerator_model(c: &mut Criterion) {
    let model = vgg9(0.85, 1);
    let layer = model.conv_like_layers()[1].clone();
    let compiled = LayerCompiler::new(CompilerOptions::default())
        .compile(&layer)
        .expect("compile");
    let accelerator = AcceleratorModel::new(ArchConfig::default());
    c.bench_function("accelerator_layer_report", |b| {
        b.iter(|| black_box(accelerator.simulate_layer(black_box(&compiled))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cse, bench_layer_compile, bench_accelerator_model
}
criterion_main!(benches);
