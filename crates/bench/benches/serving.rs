//! Criterion benchmark: dynamic batching vs request-at-a-time dispatch on the
//! threaded serving runtime.
//!
//! This is the acceptance benchmark of the serving subsystem: under
//! saturating load (every request submitted as fast as admission allows),
//! the dynamic batcher (batches close at 64 requests or 200 µs) must deliver
//! at least 3× the wall-clock samples/s of batch-size-1 dispatch on
//! `micro_cnn`, while reporting the p50/p95/p99 request latency distribution
//! through the shared log-bucketed [`LatencyHistogram`]. Both paths produce
//! value-identical logits (pinned by the `serving` suite); only the batch
//! composition differs.

use camdnn::FunctionalBackend;
use camdnn_bench::LatencyHistogram;
use criterion::{criterion_group, criterion_main, Criterion};
use serve::{BackendExecutor, BatchingPolicy, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;
use tnn::model::micro_cnn;
use tnn::Tensor;

const REQUESTS: usize = 128;

fn executor() -> Arc<BackendExecutor> {
    Arc::new(BackendExecutor::functional(
        FunctionalBackend::default(),
        Arc::new(micro_cnn("serving-micro", 8, 0.8, 42)),
    ))
}

fn request_inputs(executor: &BackendExecutor) -> Vec<Tensor<i64>> {
    (0..REQUESTS)
        .map(|i| FunctionalBackend::input_for_sample(executor.model(), 4, 0, i))
        .collect()
}

fn config(batching: BatchingPolicy) -> ServeConfig {
    ServeConfig::default()
        .with_batching(batching)
        .with_queue_capacity(2 * REQUESTS)
}

/// Floods a freshly started server with every input (saturating load), waits
/// for all responses, records per-request wall latencies, and returns the
/// drain time in seconds.
fn drive(
    executor: Arc<BackendExecutor>,
    config: ServeConfig,
    inputs: &[Tensor<i64>],
    histogram: &mut LatencyHistogram,
) -> f64 {
    let server = Server::start(executor, config).expect("start server");
    let start = Instant::now();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|input| server.submit(input.clone()).expect("submit"))
        .collect();
    for ticket in tickets {
        let completion = ticket.wait().expect("completion");
        histogram.record(completion.wall_latency);
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown().expect("shutdown");
    elapsed
}

fn bench_single_dispatch(c: &mut Criterion) {
    let executor = executor();
    let inputs = request_inputs(&executor);
    // Warm the shared compile cache outside the timed region.
    drive(
        executor.clone(),
        config(BatchingPolicy::single()),
        &inputs[..1],
        &mut LatencyHistogram::new(),
    );
    let mut group = c.benchmark_group("serve_micro_cnn_128_requests");
    group.sample_size(10);
    group.bench_function("single_dispatch_b1", |b| {
        b.iter(|| {
            drive(
                executor.clone(),
                config(BatchingPolicy::single()),
                &inputs,
                &mut LatencyHistogram::new(),
            )
        })
    });
    group.finish();
}

fn bench_dynamic_batching(c: &mut Criterion) {
    let executor = executor();
    let inputs = request_inputs(&executor);
    drive(
        executor.clone(),
        config(BatchingPolicy::new(64, 200)),
        &inputs[..1],
        &mut LatencyHistogram::new(),
    );
    let mut group = c.benchmark_group("serve_micro_cnn_128_requests");
    group.sample_size(10);
    group.bench_function("dynamic_batching_b64", |b| {
        b.iter(|| {
            drive(
                executor.clone(),
                config(BatchingPolicy::new(64, 200)),
                &inputs,
                &mut LatencyHistogram::new(),
            )
        })
    });
    group.finish();
}

/// Times both dispatch modes head to head on the identical saturating load
/// and prints the wall-clock samples/s ratio (the ≥3× serving acceptance
/// figure) next to both latency distributions.
fn serving_speedup(_c: &mut Criterion) {
    let executor = executor();
    let inputs = request_inputs(&executor);
    // Warm-up: compile every layer into the shared cache.
    drive(
        executor.clone(),
        config(BatchingPolicy::single()),
        &inputs[..1],
        &mut LatencyHistogram::new(),
    );

    let iters = 3u32;
    let mut single_latency = LatencyHistogram::new();
    let mut batched_latency = LatencyHistogram::new();
    let mut single_s = 0.0;
    let mut batched_s = 0.0;
    for _ in 0..iters {
        single_s += drive(
            executor.clone(),
            config(BatchingPolicy::single()),
            &inputs,
            &mut single_latency,
        );
        batched_s += drive(
            executor.clone(),
            config(BatchingPolicy::new(64, 200)),
            &inputs,
            &mut batched_latency,
        );
    }
    let single_rate = f64::from(iters) * REQUESTS as f64 / single_s;
    let batched_rate = f64::from(iters) * REQUESTS as f64 / batched_s;
    let speedup = batched_rate / single_rate;
    println!(
        "serving_speedup: single-dispatch {single_rate:.1} samples/s, dynamic batching \
         {batched_rate:.1} samples/s -> {speedup:.1}x"
    );
    println!("  single-dispatch latency: {}", single_latency.summary_ms());
    println!(
        "  dynamic-batch   latency: {}",
        batched_latency.summary_ms()
    );
    // The serving acceptance criterion, enforced whenever the bench actually
    // runs (CI compiles it with --no-run; run it locally). Wall-clock ratios
    // can dip on heavily loaded machines — override the floor with
    // SERVING_SPEEDUP_MIN (e.g. `SERVING_SPEEDUP_MIN=0`).
    let floor: f64 = std::env::var("SERVING_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    assert!(
        speedup >= floor,
        "dynamic batching must reach >={floor}x the single-dispatch samples/s at saturating \
         load, measured {speedup:.1}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_dispatch, bench_dynamic_batching, serving_speedup
}
criterion_main!(benches);
