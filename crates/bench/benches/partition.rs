//! Criterion benchmark: modeled throughput scaling of multi-tile partitioning.
//!
//! The acceptance benchmark of the `apc::partition` subsystem: splitting a
//! channel-heavy `micro_cnn` across a 4×4 tile grid must deliver at least 2×
//! the modeled samples/s of the single-tile execution of the same inputs —
//! the tiles run their units in parallel, so the critical path shrinks to the
//! busiest tile plus the inter-tile routing the partition-quality report
//! prices. Logits are value-identical across every grid (pinned by the
//! `partition_equivalence` suite and re-asserted here); only the placement
//! differs. `partition_speedup` reports the modeled ladder next to the
//! wall-clock per-grid execution times and appends a dated record (including
//! the partition-plan cache counters of the shared compile cache) to
//! `BENCH_partition.json` at the repo root (schema: `BENCH_schema.md`).

use apc::{CompileCache, TileGrid};
use camdnn::{BatchReport, FunctionalBackend};
use camdnn_bench::{append_bench_record, bench_smoke, utc_date_string, PartitionBenchRecord};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tnn::model::{micro_cnn, ModelGraph};
use tnn::Tensor;

/// Channel width of the measured model: 64 channels give the fully-connected
/// head 1024 inputs — 64 channel groups at 4-bit activations, plenty of
/// elective channel splits for a 16-tile grid. `BENCH_SMOKE` shrinks to 16
/// channels so CI can exercise the whole measurement path in seconds.
fn workload() -> ModelGraph {
    let channels = if bench_smoke() { 16 } else { 64 };
    micro_cnn("partition-micro", channels, 0.8, 42)
}

/// The tile-grid ladder: single tile, quad, and the full 4×4.
fn grids() -> [TileGrid; 3] {
    [
        TileGrid::default(),
        TileGrid { rows: 2, cols: 2 },
        TileGrid { rows: 4, cols: 4 },
    ]
}

fn run_on_grid(
    model: &ModelGraph,
    inputs: &[Tensor<i64>],
    grid: TileGrid,
    cache: &CompileCache,
) -> BatchReport {
    FunctionalBackend::default()
        .with_tile_grid(grid)
        .run_batch(model, inputs, cache)
        .expect("partitioned run")
}

fn bench_grids(c: &mut Criterion) {
    let model = workload();
    let cache = CompileCache::new();
    let inputs = vec![FunctionalBackend::input_for(&model, 4, 0)];
    let mut group = c.benchmark_group("partition_micro_cnn");
    group.sample_size(10);
    for grid in grids() {
        group.bench_function(format!("grid_{}", grid.label()), |b| {
            b.iter(|| black_box(run_on_grid(&model, black_box(&inputs), grid, &cache)))
        });
    }
    group.finish();
}

/// Runs the identical input batch on every grid of the ladder, prints the
/// modeled samples/s scaling, and enforces the ≥2× acceptance floor of the
/// largest grid over the single-tile run.
fn partition_speedup(_c: &mut Criterion) {
    let smoke = bench_smoke();
    let model = workload();
    let cache = CompileCache::new();
    let batch = if smoke { 1 } else { 4 };
    let inputs: Vec<Tensor<i64>> = (0..batch)
        .map(|sample| FunctionalBackend::input_for_sample(&model, 4, 0, sample))
        .collect();
    let reports: Vec<(TileGrid, BatchReport)> = grids()
        .into_iter()
        .map(|grid| (grid, run_on_grid(&model, &inputs, grid, &cache)))
        .collect();
    let (_, baseline) = &reports[0];
    for (grid, report) in &reports[1..] {
        for (sample, reference) in report.samples.iter().zip(&baseline.samples) {
            assert_eq!(
                sample.logits,
                reference.logits,
                "grid {} drifted from the single-tile logits",
                grid.label()
            );
        }
    }
    let ladder: Vec<f64> = reports
        .iter()
        .map(|(_, report)| report.samples_per_s)
        .collect();
    let speedup = ladder.last().expect("ladder") / ladder[0];
    for (grid, report) in &reports {
        let quality = report.partition.as_ref().expect("partition quality");
        println!(
            "partition grid {:>5}: {:>10.1} samples/s, {:>2} tiles used, \
             {:>9} traffic bits ({} bit-hops), util row {:.2} col {:.2}",
            grid.label(),
            report.samples_per_s,
            quality.tiles_used,
            quality.traffic_bits,
            quality.traffic_bit_hops,
            quality.row_utilization,
            quality.col_utilization,
        );
    }
    println!(
        "partition_speedup: {:.1}x modeled samples/s on {} over {}",
        speedup,
        reports.last().expect("ladder").0.label(),
        reports[0].0.label(),
    );
    let (largest_grid, largest) = reports.last().expect("ladder");
    let quality = largest.partition.as_ref().expect("partition quality");
    append_bench_record(
        "BENCH_partition.json",
        &PartitionBenchRecord {
            date: utc_date_string(),
            bench: "partition".to_string(),
            workload: model.name().to_string(),
            act_bits: 4,
            grids: grids().iter().map(TileGrid::label).collect(),
            modeled_samples_per_s: ladder,
            modeled_speedup: speedup,
            tiles_used: quality.tiles_used,
            traffic_bits: quality.traffic_bits,
            traffic_bit_hops: quality.traffic_bit_hops,
            smoke,
            partition_cache: cache.partition_stats(),
        },
    );
    let _ = largest_grid;
    // The acceptance criterion of the partitioning subsystem, enforced
    // whenever the bench actually runs (CI smokes it with BENCH_SMOKE=1 and
    // the floor zeroed; run it locally for real figures). The modeled ratio
    // is deterministic, but the smoke workload is smaller — override the
    // floor with PARTITION_SPEEDUP_MIN (e.g. `PARTITION_SPEEDUP_MIN=0`).
    let floor: f64 = std::env::var("PARTITION_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    assert!(
        speedup >= floor,
        "partitioned execution must reach >={floor}x the single-tile modeled samples/s \
         on the largest grid, measured {speedup:.1}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grids, partition_speedup
}
criterion_main!(benches);
