//! Serializable snapshots of the registry and span collector, in the two
//! exposition formats: canonical JSON (schema: `BENCH_schema.md`,
//! `metrics_snapshot_v1`) and Prometheus-style text.
//!
//! A snapshot is split into two sections:
//!
//! * **`deterministic`** — counters, gauges and deterministic histograms.
//!   For a fixed workload this section is byte-identical across runs and at
//!   any `RAYON_NUM_THREADS`, so tests may golden-pin its JSON.
//! * **`timing`** — wall-clock histograms and span aggregates. Real time is
//!   never deterministic, so this section is excluded from golden JSON.

use serde::{Deserialize, Serialize};

/// One named monotone counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dotted metric name, e.g. `apc.compile.misses`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named point-in-time gauge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Last set (or high-water) value.
    pub value: i64,
}

/// One occupied histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Upper bound of the bucket, in nanoseconds (inclusive).
    pub bound_ns: u64,
    /// Values recorded into the bucket.
    pub count: u64,
}

/// One named log-bucketed histogram, summarised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of the recorded values, ns (saturating at `u64::MAX`).
    pub sum_ns: u64,
    /// Smallest recorded value (exact), ns.
    pub min_ns: u64,
    /// Largest recorded value (exact), ns.
    pub max_ns: u64,
    /// Nearest-rank p50 over bucket bounds, ns.
    pub p50_ns: u64,
    /// Nearest-rank p95 over bucket bounds, ns.
    pub p95_ns: u64,
    /// Nearest-rank p99 over bucket bounds, ns.
    pub p99_ns: u64,
    /// The occupied buckets, ascending by bound.
    pub buckets: Vec<HistogramBucket>,
}

/// One aggregated span path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// `;`-joined scope chain (collapsed-stack convention).
    pub path: String,
    /// Times the scope was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds inside the scope.
    pub total_ns: u64,
    /// Total minus direct children's totals (clamped at zero).
    pub self_ns: u64,
}

/// The golden-safe section: byte-identical across runs for a fixed workload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicSection {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Deterministic histograms (virtual-clock values), sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// The wall-clock section, excluded from golden comparisons.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSection {
    /// Wall-clock histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanSnapshot>,
}

/// A full snapshot of the telemetry state (schema `metrics_snapshot_v1`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema discriminator, always `"metrics_snapshot_v1"`.
    pub schema: String,
    /// Counters, gauges and deterministic histograms (golden-safe).
    pub deterministic: DeterministicSection,
    /// Wall-clock histograms and spans (never golden-pinned).
    pub timing: TimingSection,
}

impl MetricsSnapshot {
    /// The schema discriminator of this snapshot layout.
    pub const SCHEMA: &'static str = "metrics_snapshot_v1";

    /// Canonical JSON of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("metrics snapshot serializes")
    }

    /// Canonical JSON of the deterministic section alone — the byte string
    /// golden tests pin.
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string(&self.deterministic).expect("deterministic section serializes")
    }

    /// Parses a snapshot back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error string on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Prometheus-style exposition text: `# TYPE` lines plus one sample per
    /// metric, names sanitised to `[a-zA-Z0-9_]` under a `camdnn_` prefix,
    /// histograms in cumulative `_bucket{le=...}` / `_sum` / `_count` form
    /// and spans as labelled `camdnn_span_*` counters.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for counter in &self.deterministic.counters {
            let name = sanitize(&counter.name);
            out.push_str(&format!(
                "# TYPE camdnn_{name} counter\ncamdnn_{name} {}\n",
                counter.value
            ));
        }
        for gauge in &self.deterministic.gauges {
            let name = sanitize(&gauge.name);
            out.push_str(&format!(
                "# TYPE camdnn_{name} gauge\ncamdnn_{name} {}\n",
                gauge.value
            ));
        }
        for histogram in self
            .deterministic
            .histograms
            .iter()
            .chain(&self.timing.histograms)
        {
            let name = sanitize(&histogram.name);
            out.push_str(&format!("# TYPE camdnn_{name} histogram\n"));
            let mut cumulative = 0u64;
            for bucket in &histogram.buckets {
                cumulative += bucket.count;
                out.push_str(&format!(
                    "camdnn_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket.bound_ns
                ));
            }
            out.push_str(&format!(
                "camdnn_{name}_bucket{{le=\"+Inf\"}} {}\n",
                histogram.count
            ));
            out.push_str(&format!("camdnn_{name}_sum {}\n", histogram.sum_ns));
            out.push_str(&format!("camdnn_{name}_count {}\n", histogram.count));
        }
        if !self.timing.spans.is_empty() {
            out.push_str("# TYPE camdnn_span_total_ns counter\n");
            out.push_str("# TYPE camdnn_span_count counter\n");
            for span in &self.timing.spans {
                out.push_str(&format!(
                    "camdnn_span_total_ns{{path=\"{}\"}} {}\n",
                    span.path, span.total_ns
                ));
                out.push_str(&format!(
                    "camdnn_span_count{{path=\"{}\"}} {}\n",
                    span.path, span.count
                ));
            }
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus name charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            schema: MetricsSnapshot::SCHEMA.to_string(),
            deterministic: DeterministicSection {
                counters: vec![CounterSnapshot {
                    name: "apc.compile.misses".to_string(),
                    value: 4,
                }],
                gauges: vec![GaugeSnapshot {
                    name: "serve.replicas".to_string(),
                    value: 2,
                }],
                histograms: vec![HistogramSnapshot {
                    name: "serve.sim.latency".to_string(),
                    count: 3,
                    sum_ns: 60,
                    min_ns: 10,
                    max_ns: 30,
                    p50_ns: 20,
                    p95_ns: 30,
                    p99_ns: 30,
                    buckets: vec![
                        HistogramBucket {
                            bound_ns: 10,
                            count: 1,
                        },
                        HistogramBucket {
                            bound_ns: 20,
                            count: 1,
                        },
                        HistogramBucket {
                            bound_ns: 30,
                            count: 1,
                        },
                    ],
                }],
            },
            timing: TimingSection {
                histograms: vec![],
                spans: vec![SpanSnapshot {
                    path: "compile;lower".to_string(),
                    count: 2,
                    total_ns: 500,
                    self_ns: 500,
                }],
            },
        }
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let snapshot = sample();
        let json = snapshot.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse back");
        assert_eq!(back, snapshot);
        assert_eq!(back.to_json(), json, "round trip is byte-stable");
        assert!(json.contains("\"metrics_snapshot_v1\""));
        assert!(snapshot.deterministic_json().contains("apc.compile.misses"));
        assert!(!snapshot.deterministic_json().contains("compile;lower"));
    }

    #[test]
    fn prometheus_text_has_types_samples_and_cumulative_buckets() {
        let text = sample().prometheus();
        assert!(text.contains("# TYPE camdnn_apc_compile_misses counter"));
        assert!(text.contains("camdnn_apc_compile_misses 4"));
        assert!(text.contains("# TYPE camdnn_serve_replicas gauge"));
        assert!(text.contains("camdnn_serve_sim_latency_bucket{le=\"20\"} 2"));
        assert!(text.contains("camdnn_serve_sim_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("camdnn_serve_sim_latency_sum 60"));
        assert!(text.contains("camdnn_span_total_ns{path=\"compile;lower\"} 500"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(MetricsSnapshot::from_json("{not json").is_err());
        assert!(MetricsSnapshot::from_json("{\"schema\": 3}").is_err());
    }
}
