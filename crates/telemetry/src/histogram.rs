//! The log-bucketed latency histogram shared by the registry, the serving
//! reports and the benches (promoted here from `camdnn-bench`, which keeps a
//! re-export).

use std::time::Duration;

/// Sub-buckets per power of two of the log-linear histogram: values are
/// resolved to within `1/32` (~3%) of their magnitude.
const HISTOGRAM_SUB_BUCKETS: u64 = 32;
const HISTOGRAM_SUB_SHIFT: u32 = 5; // log2(HISTOGRAM_SUB_BUCKETS)

/// A mergeable log-bucketed latency histogram over nanosecond values.
///
/// Buckets are log-linear (32 linear sub-buckets per power of two), so any
/// `u64` latency lands in one of ~1900 fixed buckets with at most ~3%
/// relative quantisation error — the usual HDR-style trade-off. Percentiles
/// are read with the nearest-rank rule over bucket upper bounds, and two
/// histograms [`merge`](Self::merge) by adding counts (merge is associative
/// and commutative — property-tested in this crate), which makes the type
/// suitable for accumulating per-thread or per-run distributions without
/// keeping every sample.
///
/// # Example
///
/// ```
/// use telemetry::LatencyHistogram;
///
/// let mut histogram = LatencyHistogram::new();
/// for v in 1..=1000u64 {
///     histogram.record_ns(v);
/// }
/// assert_eq!(histogram.count(), 1000);
/// let p50 = histogram.percentile_ns(50.0);
/// assert!((485..=515).contains(&p50), "p50 within 3%: {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // Index space: values below 32 map 1:1; every further power of two
        // contributes 32 sub-buckets, up to the 2^63 octave.
        let octaves = 64 - HISTOGRAM_SUB_SHIFT as usize;
        LatencyHistogram {
            counts: vec![0; (octaves + 1) * HISTOGRAM_SUB_BUCKETS as usize],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    pub(crate) fn bucket_index(value_ns: u64) -> usize {
        if value_ns < HISTOGRAM_SUB_BUCKETS {
            return value_ns as usize;
        }
        let exponent = 63 - value_ns.leading_zeros();
        let shift = exponent - HISTOGRAM_SUB_SHIFT;
        let sub = (value_ns >> shift) - HISTOGRAM_SUB_BUCKETS;
        ((shift as u64 + 1) * HISTOGRAM_SUB_BUCKETS + sub) as usize
    }

    /// Largest value that maps to bucket `index` (the representative a
    /// percentile read returns).
    pub(crate) fn bucket_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < HISTOGRAM_SUB_BUCKETS {
            return index;
        }
        let shift = (index / HISTOGRAM_SUB_BUCKETS - 1) as u32;
        let sub = index % HISTOGRAM_SUB_BUCKETS;
        // In u128: the top bucket's bound is exactly 2^64 - 1.
        let bound = ((u128::from(HISTOGRAM_SUB_BUCKETS + sub) + 1) << shift) - 1;
        bound.min(u128::from(u64::MAX)) as u64
    }

    /// Records one latency in nanoseconds.
    pub fn record_ns(&mut self, value_ns: u64) {
        self.counts[Self::bucket_index(value_ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(value_ns);
        self.min_ns = self.min_ns.min(value_ns);
        self.max_ns = self.max_ns.max(value_ns);
    }

    /// Records one wall-clock duration.
    pub fn record(&mut self, duration: Duration) {
        self.record_ns(duration.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of the recorded values, in nanoseconds (exact, in `u128`).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of the recorded values (exact), or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.total)) as u64
        }
    }

    /// The nearest-rank `pct` percentile, resolved to the containing
    /// bucket's upper bound (within ~3% of the exact value); 0 when empty.
    pub fn percentile_ns(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report beyond the exact maximum.
                return Self::bucket_bound(index).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Adds every recorded value of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The occupied buckets as `(upper_bound_ns, count)` pairs, in
    /// ascending bound order — the sparse form the snapshot serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (Self::bucket_bound(index), count))
            .collect()
    }

    /// Renders `p50/p95/p99/max` in milliseconds for bench logs.
    pub fn summary_ms(&self) -> String {
        format!(
            "p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms (n={})",
            self.percentile_ns(50.0) as f64 / 1e6,
            self.percentile_ns(95.0) as f64 / 1e6,
            self.percentile_ns(99.0) as f64 / 1e6,
            self.max_ns() as f64 / 1e6,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_u64_range_in_order() {
        // Bucket bounds are monotone and every value maps to a bucket whose
        // bound is >= the value with <= ~3.2% relative error.
        for value in [
            0u64,
            1,
            31,
            32,
            63,
            64,
            1000,
            123_456,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = LatencyHistogram::bucket_index(value);
            let bound = LatencyHistogram::bucket_bound(index);
            assert!(bound >= value, "bound {bound} < value {value}");
            assert!(
                bound - value <= value / 32 + 1,
                "bucket too coarse at {value}: bound {bound}"
            );
        }
        let bounds: Vec<u64> = (0..200).map(LatencyHistogram::bucket_bound).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histogram_percentiles_track_exact_ranks() {
        let mut histogram = LatencyHistogram::new();
        for value in 1..=10_000u64 {
            histogram.record_ns(value);
        }
        assert_eq!(histogram.count(), 10_000);
        assert_eq!(histogram.min_ns(), 1);
        assert_eq!(histogram.max_ns(), 10_000);
        assert_eq!(histogram.mean_ns(), 5_000);
        for (pct, exact) in [(50.0, 5_000u64), (95.0, 9_500), (99.0, 9_900)] {
            let got = histogram.percentile_ns(pct);
            let error = got.abs_diff(exact);
            assert!(
                error * 32 <= exact,
                "p{pct}: got {got}, exact {exact} (error {error})"
            );
        }
        assert!(histogram.summary_ms().contains("n=10000"));
        // An empty histogram reads as zeros.
        let empty = LatencyHistogram::new();
        assert_eq!(
            (empty.percentile_ns(99.0), empty.mean_ns(), empty.min_ns()),
            (0, 0, 0)
        );
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for value in 0..5_000u64 {
            let scaled = value * 37 + 11;
            if value % 2 == 0 {
                left.record_ns(scaled);
            } else {
                right.record_ns(scaled);
            }
            combined.record_ns(scaled);
        }
        left.merge(&right);
        assert_eq!(left, combined);
        left.record(Duration::from_micros(3));
        assert_eq!(left.count(), combined.count() + 1);
    }

    #[test]
    fn nonzero_buckets_are_sparse_and_ordered() {
        let mut histogram = LatencyHistogram::new();
        histogram.record_ns(5);
        histogram.record_ns(5);
        histogram.record_ns(1_000_000);
        let buckets = histogram.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (5, 2));
        assert!(buckets[1].0 >= 1_000_000 && buckets[1].1 == 1);
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
