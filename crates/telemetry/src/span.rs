//! The hierarchical span recorder.
//!
//! A [`SpanGuard`] opens a scope on creation and closes it on drop; scopes
//! nest per thread through a thread-local stack, so a span's *path* is the
//! `;`-joined chain of the enclosing span names (the collapsed-stack
//! convention). Aggregation is by path — the collector keeps one
//! `(count, total wall-clock ns)` cell per distinct path, not one record per
//! span — which keeps recording O(1) in the number of spans entered.
//!
//! Work handed to other threads keeps its parentage through
//! [`SpanContext`]: capture the current stack before spawning, adopt it
//! inside the worker, and spans opened there extend the captured path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate of one distinct span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PathStat {
    count: u64,
    total_ns: u64,
}

/// The process-wide span aggregation behind [`crate::global`].
#[derive(Debug, Default)]
pub struct SpanCollector {
    paths: Mutex<BTreeMap<String, PathStat>>,
}

impl SpanCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    fn record(&self, path: String, elapsed_ns: u64) {
        let mut paths = self.paths.lock().expect("span paths");
        let stat = paths.entry(path).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    }

    /// Drops every aggregated path.
    pub fn reset(&self) {
        self.paths.lock().expect("span paths").clear();
    }

    /// All aggregated paths as `(path, count, total_ns, self_ns)` sorted by
    /// path. Self time is the span's total minus the totals of its *direct*
    /// children (clamped at zero: children running on other threads can
    /// overlap their parent wall-clock).
    pub fn collect(&self) -> Vec<(String, u64, u64, u64)> {
        let paths = self.paths.lock().expect("span paths");
        paths
            .iter()
            .map(|(path, stat)| {
                let child_ns: u64 = paths
                    .iter()
                    .filter(|(other, _)| {
                        other.len() > path.len() + 1
                            && other.starts_with(path.as_str())
                            && other.as_bytes()[path.len()] == b';'
                            && !other[path.len() + 1..].contains(';')
                    })
                    .map(|(_, child)| child.total_ns)
                    .sum();
                (
                    path.clone(),
                    stat.count,
                    stat.total_ns,
                    stat.total_ns.saturating_sub(child_ns),
                )
            })
            .collect()
    }

    /// Collapsed-stack (flamegraph) text: one `path self_ns` line per
    /// distinct path, sorted by path — feedable to standard flamegraph
    /// tooling, with self-time nanoseconds as the weight.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, _, _, self_ns) in self.collect() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

/// An open span scope; closes (and records) on drop.
///
/// Created by [`crate::span`]; inert (no clock read, no allocation) when
/// recording is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    path: String,
    start: Instant,
}

impl SpanGuard {
    /// An inert guard (recording disabled).
    pub(crate) fn disabled() -> Self {
        SpanGuard { inner: None }
    }

    /// Opens a scope named `name` on the current thread's stack.
    pub(crate) fn enter(name: &str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if let Some(parent) = stack.last() {
                format!("{parent};{name}")
            } else {
                name.to_string()
            };
            stack.push(path.clone());
            path
        });
        SpanGuard {
            inner: Some(SpanInner {
                path,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed_ns = inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop back to this span even if an inner guard leaked (mem::forget).
            if let Some(position) = stack.iter().rposition(|path| *path == inner.path) {
                stack.truncate(position);
            }
        });
        crate::global().spans().record(inner.path, elapsed_ns);
    }
}

/// A captured span stack, for carrying parentage onto worker threads (for
/// example into rayon closures). Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct SpanContext {
    /// The capturing thread's innermost span path (empty when none or when
    /// recording was disabled at capture time).
    path: Option<String>,
}

impl SpanContext {
    /// Captures the calling thread's current span path.
    pub fn capture() -> Self {
        if !crate::enabled() {
            return SpanContext { path: None };
        }
        SpanContext {
            path: SPAN_STACK.with(|stack| stack.borrow().last().cloned()),
        }
    }

    /// Installs the captured path as the calling thread's span parent until
    /// the returned guard drops (restoring whatever was there before).
    /// Spans opened under the guard extend the captured path.
    pub fn adopt(&self) -> ContextGuard {
        let Some(path) = &self.path else {
            return ContextGuard { depth: None };
        };
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(path.clone());
            stack.len()
        });
        ContextGuard { depth: Some(depth) }
    }
}

/// Restores the thread's span stack when an adopted [`SpanContext`] scope
/// ends.
#[derive(Debug)]
pub struct ContextGuard {
    depth: Option<usize>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.len() >= depth {
                stack.truncate(depth - 1);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that toggle the global recorder.
    fn with_recorder<T>(test: impl FnOnce() -> T) -> T {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        crate::reset();
        crate::set_enabled(true);
        let out = test();
        crate::set_enabled(false);
        crate::reset();
        out
    }

    #[test]
    fn nested_spans_build_semicolon_paths() {
        with_recorder(|| {
            {
                let _outer = crate::span("outer");
                let _inner = crate::span("inner");
            }
            {
                let _outer = crate::span("outer");
            }
            let collected = crate::global().spans().collect();
            let paths: Vec<&str> = collected.iter().map(|(p, ..)| p.as_str()).collect();
            assert_eq!(paths, vec!["outer", "outer;inner"]);
            let outer = &collected[0];
            assert_eq!(outer.1, 2, "outer entered twice");
            // Self time excludes the direct child's total.
            assert_eq!(outer.3, outer.2.saturating_sub(collected[1].2));
            let flame = crate::flamegraph();
            assert!(flame.contains("outer;inner "));
        });
    }

    #[test]
    fn contexts_carry_parentage_across_threads() {
        with_recorder(|| {
            let context = {
                let _parent = crate::span("parent");
                SpanContext::capture()
            };
            std::thread::spawn(move || {
                let _adopted = context.adopt();
                let _child = crate::span("child");
            })
            .join()
            .expect("worker");
            let collected = crate::global().spans().collect();
            assert!(
                collected.iter().any(|(p, ..)| p == "parent;child"),
                "missing adopted path: {collected:?}"
            );
        });
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_recorder(|| {
            crate::set_enabled(false);
            {
                let _span = crate::span("ghost");
            }
            assert!(crate::global().spans().collect().is_empty());
            assert!(SpanContext::capture().path.is_none());
        });
    }
}
