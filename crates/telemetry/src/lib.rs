//! `camdnn-telemetry` — the observability spine of the CAM/RTM stack.
//!
//! One process-wide recorder ([`global`]) unifies three measurement surfaces
//! that previously lived in per-crate silos:
//!
//! * a **metrics registry** ([`Registry`]) of named counters, gauges and
//!   log-bucketed histograms, sharded by name hash so hot-path updates on
//!   distinct metrics never contend, with deterministic (sorted-by-name)
//!   snapshot ordering;
//! * a **hierarchical span recorder** ([`SpanGuard`], [`SpanContext`]):
//!   enter/exit scopes with thread-safe parenting and wall-clock timing,
//!   aggregated per collapsed-stack path and exportable as flamegraph text
//!   ([`flamegraph`]);
//! * two **exposition formats** over one [`MetricsSnapshot`]: canonical JSON
//!   (schema `metrics_snapshot_v1`, see `BENCH_schema.md`) and
//!   Prometheus-style text ([`MetricsSnapshot::prometheus`]).
//!
//! # Determinism contract
//!
//! Snapshots are split in two. The `deterministic` section holds counters,
//! gauges and histograms of virtual-clock values: for a fixed workload it is
//! byte-identical across runs and at any `RAYON_NUM_THREADS`, so tests
//! golden-pin [`MetricsSnapshot::deterministic_json`]. The `timing` section
//! holds wall-clock histograms and span aggregates and is never pinned.
//!
//! # Cost contract
//!
//! Recording is **off** by default. Every instrumentation hook in the stack
//! first checks [`enabled`] — a single relaxed atomic load — and does nothing
//! else when recording is off, so the disabled path stays within noise of
//! uninstrumented code (`benches/telemetry.rs` pins < 3% on the engine hot
//! loop). Instrumented crates gate on [`enabled`] themselves; the free
//! functions here ([`count`], [`observe`], [`span`], …) also check it, so
//! callers never need an outer `if`.
//!
//! ```
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! {
//!     let _compile = telemetry::span("compile");
//!     telemetry::count("compile.layers", 3);
//! }
//! let snapshot = telemetry::snapshot();
//! assert_eq!(snapshot.deterministic.counters[0].value, 3);
//! assert_eq!(snapshot.timing.spans[0].path, "compile");
//! telemetry::set_enabled(false);
//! # telemetry::reset();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod histogram;
mod registry;
mod snapshot;
mod span;

pub use histogram::LatencyHistogram;
pub use registry::{HistogramClass, Registry};
pub use snapshot::{
    CounterSnapshot, DeterministicSection, GaugeSnapshot, HistogramBucket, HistogramSnapshot,
    MetricsSnapshot, SpanSnapshot, TimingSection,
};
pub use span::{ContextGuard, SpanCollector, SpanContext, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide telemetry state: the enable flag, the metrics registry
/// and the span collector.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    registry: Registry,
    spans: SpanCollector,
}

impl Telemetry {
    fn new() -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            registry: Registry::new(),
            spans: SpanCollector::new(),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span collector.
    pub fn spans(&self) -> &SpanCollector {
        &self.spans
    }
}

/// The process-wide telemetry instance.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

/// Whether recording is on. Instrumentation hooks gate on this single
/// relaxed load; everything else in this crate is behind it.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Turns recording on or off (off is the default).
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

/// Drops every recorded metric and span aggregate (the enable flag is left
/// as is). Tests call this to start from a clean, deterministic state.
pub fn reset() {
    global().registry.reset();
    global().spans.reset();
}

/// Adds `delta` to the named counter when recording is on.
#[inline]
pub fn count(name: &str, delta: u64) {
    if enabled() {
        global().registry.add(name, delta);
    }
}

/// Sets the named gauge when recording is on.
#[inline]
pub fn gauge(name: &str, value: i64) {
    if enabled() {
        global().registry.set_gauge(name, value);
    }
}

/// Raises the named gauge high-water mark when recording is on.
#[inline]
pub fn gauge_max(name: &str, value: i64) {
    if enabled() {
        global().registry.max_gauge(name, value);
    }
}

/// Records a deterministic (virtual-clock) value into the named histogram
/// when recording is on.
#[inline]
pub fn observe(name: &str, value_ns: u64) {
    if enabled() {
        global()
            .registry
            .observe(name, value_ns, HistogramClass::Deterministic);
    }
}

/// Records a wall-clock value into the named timing histogram when recording
/// is on.
#[inline]
pub fn observe_timing(name: &str, value_ns: u64) {
    if enabled() {
        global()
            .registry
            .observe(name, value_ns, HistogramClass::Timing);
    }
}

/// Opens a span scope named `name`; the scope closes (and its wall-clock
/// time records) when the returned guard drops. Inert when recording is off.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if enabled() {
        SpanGuard::enter(name)
    } else {
        SpanGuard::disabled()
    }
}

/// Takes a full snapshot of the current telemetry state.
pub fn snapshot() -> MetricsSnapshot {
    let registry = &global().registry;
    MetricsSnapshot {
        schema: MetricsSnapshot::SCHEMA.to_string(),
        deterministic: DeterministicSection {
            counters: registry.collect_counters(),
            gauges: registry.collect_gauges(),
            histograms: registry.collect_histograms(HistogramClass::Deterministic),
        },
        timing: TimingSection {
            histograms: registry.collect_histograms(HistogramClass::Timing),
            spans: global()
                .spans
                .collect()
                .into_iter()
                .map(|(path, count, total_ns, self_ns)| SpanSnapshot {
                    path,
                    count,
                    total_ns,
                    self_ns,
                })
                .collect(),
        },
    }
}

/// Collapsed-stack flamegraph text of the span aggregates (one
/// `path self_ns` line per path, sorted).
pub fn flamegraph() -> String {
    global().spans.collapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Mutex;

    /// Serialises tests that touch the global recorder.
    fn with_recorder<T>(test: impl FnOnce() -> T) -> T {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|poison| poison.into_inner());
        reset();
        set_enabled(true);
        let out = test();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        with_recorder(|| {
            set_enabled(false);
            count("ghost", 1);
            gauge("ghost.gauge", 2);
            observe("ghost.hist", 3);
            observe_timing("ghost.timing", 4);
            let snap = snapshot();
            assert_eq!(snap.deterministic, DeterministicSection::default());
            assert_eq!(snap.timing, TimingSection::default());
        });
    }

    #[test]
    fn snapshot_sections_split_deterministic_from_timing() {
        with_recorder(|| {
            count("z.counter", 2);
            count("a.counter", 1);
            gauge_max("peak", 9);
            observe("det.hist", 50);
            observe_timing("wall.hist", 70);
            {
                let _span = span("root");
            }
            let snap = snapshot();
            assert_eq!(snap.schema, MetricsSnapshot::SCHEMA);
            let names: Vec<&str> = snap
                .deterministic
                .counters
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            assert_eq!(names, vec!["a.counter", "z.counter"], "sorted by name");
            assert_eq!(snap.deterministic.gauges[0].value, 9);
            assert_eq!(snap.deterministic.histograms[0].name, "det.hist");
            assert_eq!(snap.timing.histograms[0].name, "wall.hist");
            assert_eq!(snap.timing.spans[0].path, "root");
            // The deterministic section knows nothing wall-clock.
            assert!(!snap.deterministic_json().contains("wall.hist"));
            assert!(!snap.deterministic_json().contains("root"));
        });
    }

    /// The sort-based oracle: exact nearest-rank percentile over raw values.
    fn oracle_percentile(values: &[u64], pct: f64) -> u64 {
        if values.is_empty() {
            return 0;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn recorded(values: &[u64]) -> LatencyHistogram {
        let mut histogram = LatencyHistogram::new();
        for &value in values {
            histogram.record_ns(value);
        }
        histogram
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_histogram_merge_is_commutative_and_associative(
            a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
            b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
            c in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        ) {
            let (ha, hb, hc) = (recorded(&a), recorded(&b), recorded(&c));
            // Commutative: a+b == b+a.
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // Associative: (a+b)+c == a+(b+c).
            let mut ab_c = ab.clone();
            ab_c.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut a_bc = ha.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            // Merge equals recording the union.
            let mut union: Vec<u64> = a.clone();
            union.extend(&b);
            union.extend(&c);
            prop_assert_eq!(&ab_c, &recorded(&union));
        }

        #[test]
        fn prop_histogram_percentiles_agree_with_sort_oracle(
            values in proptest::collection::vec(0u64..10_000_000_000, 1..60),
            pct in 1.0f64..100.0,
        ) {
            let histogram = recorded(&values);
            let got = histogram.percentile_ns(pct);
            let exact = oracle_percentile(&values, pct);
            // Within one log-linear bucket (~1/32) of the exact rank value.
            prop_assert!(
                got.abs_diff(exact) <= exact / 32 + 1,
                "p{}: histogram {} vs oracle {}", pct, got, exact
            );
            prop_assert!(got <= histogram.max_ns());
        }
    }
}
