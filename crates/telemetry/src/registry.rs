//! The sharded metrics registry: named counters, gauges and log-bucketed
//! histograms.
//!
//! Names hash to one of [`SHARDS`] independent shards, so concurrent updates
//! of different metrics rarely contend. Counter and gauge updates on an
//! already-registered name are lock-free (a shard read-lock plus one atomic
//! RMW); only first registration and histogram recording take a short
//! exclusive lock. Snapshots merge every shard and sort by name, so their
//! ordering is deterministic regardless of hash placement or thread
//! interleaving.

use crate::histogram::LatencyHistogram;
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramBucket, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of independent shards metric names hash over.
const SHARDS: usize = 16;

/// Which snapshot section a histogram belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramClass {
    /// Values derived from deterministic quantities (virtual-clock times,
    /// counts): byte-identical across runs, safe for golden pinning.
    Deterministic,
    /// Wall-clock values: excluded from the golden (deterministic) section.
    Timing,
}

#[derive(Debug)]
struct HistogramCell {
    histogram: LatencyHistogram,
    class: HistogramClass,
}

/// One shard: three independent name → metric maps.
#[derive(Debug, Default)]
struct Shard {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, HistogramCell>>,
}

impl Shard {
    fn new() -> Self {
        Shard::default()
    }
}

/// The process-wide metrics store behind [`crate::global`].
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Shard>,
}

/// FNV-1a over the metric name; stable across runs so shard placement never
/// perturbs anything observable.
fn shard_of(name: &str) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % SHARDS as u64) as usize
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Adds `delta` to the named counter, registering it at zero first if
    /// needed.
    pub fn add(&self, name: &str, delta: u64) {
        let shard = &self.shards[shard_of(name)];
        if let Some(counter) = shard.counters.read().expect("counter shard").get(name) {
            counter.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let mut counters = shard.counters.write().expect("counter shard");
        counters
            .entry(name.to_string())
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of the named counter (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        let shard = &self.shards[shard_of(name)];
        shard
            .counters
            .read()
            .expect("counter shard")
            .get(name)
            .map_or(0, |counter| counter.load(Ordering::Relaxed))
    }

    /// Sets the named gauge to `value`, registering it first if needed.
    pub fn set_gauge(&self, name: &str, value: i64) {
        let shard = &self.shards[shard_of(name)];
        if let Some(gauge) = shard.gauges.read().expect("gauge shard").get(name) {
            gauge.store(value, Ordering::Relaxed);
            return;
        }
        let mut gauges = shard.gauges.write().expect("gauge shard");
        gauges
            .entry(name.to_string())
            .or_default()
            .store(value, Ordering::Relaxed);
    }

    /// Raises the named gauge to `value` if it is below it (a deterministic
    /// high-water mark under any thread interleaving).
    pub fn max_gauge(&self, name: &str, value: i64) {
        let shard = &self.shards[shard_of(name)];
        if let Some(gauge) = shard.gauges.read().expect("gauge shard").get(name) {
            gauge.fetch_max(value, Ordering::Relaxed);
            return;
        }
        let mut gauges = shard.gauges.write().expect("gauge shard");
        gauges
            .entry(name.to_string())
            .or_default()
            .fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of the named gauge (0 when unregistered).
    pub fn gauge(&self, name: &str) -> i64 {
        let shard = &self.shards[shard_of(name)];
        shard
            .gauges
            .read()
            .expect("gauge shard")
            .get(name)
            .map_or(0, |gauge| gauge.load(Ordering::Relaxed))
    }

    /// Records `value_ns` into the named histogram of the given class.
    ///
    /// # Panics
    ///
    /// Panics when the name was previously registered under the other class
    /// — a metric cannot be deterministic in one callsite and wall-clock in
    /// another.
    pub fn observe(&self, name: &str, value_ns: u64, class: HistogramClass) {
        let shard = &self.shards[shard_of(name)];
        let mut histograms = shard.histograms.lock().expect("histogram shard");
        let cell = histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramCell {
                histogram: LatencyHistogram::new(),
                class,
            });
        assert_eq!(
            cell.class, class,
            "histogram {name} registered under two classes"
        );
        cell.histogram.record_ns(value_ns);
    }

    /// A clone of the named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<LatencyHistogram> {
        let shard = &self.shards[shard_of(name)];
        let histograms = shard.histograms.lock().expect("histogram shard");
        histograms.get(name).map(|cell| cell.histogram.clone())
    }

    /// Drops every registered metric.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.counters.write().expect("counter shard").clear();
            shard.gauges.write().expect("gauge shard").clear();
            shard.histograms.lock().expect("histogram shard").clear();
        }
    }

    /// All counters, sorted by name.
    pub fn collect_counters(&self) -> Vec<CounterSnapshot> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            for (name, counter) in shard.counters.read().expect("counter shard").iter() {
                merged.insert(name.clone(), counter.load(Ordering::Relaxed));
            }
        }
        merged
            .into_iter()
            .map(|(name, value)| CounterSnapshot { name, value })
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn collect_gauges(&self) -> Vec<GaugeSnapshot> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            for (name, gauge) in shard.gauges.read().expect("gauge shard").iter() {
                merged.insert(name.clone(), gauge.load(Ordering::Relaxed));
            }
        }
        merged
            .into_iter()
            .map(|(name, value)| GaugeSnapshot { name, value })
            .collect()
    }

    /// All histograms of `class`, sorted by name.
    pub fn collect_histograms(&self, class: HistogramClass) -> Vec<HistogramSnapshot> {
        let mut merged = BTreeMap::new();
        for shard in &self.shards {
            for (name, cell) in shard.histograms.lock().expect("histogram shard").iter() {
                if cell.class == class {
                    merged.insert(name.clone(), HistogramSnapshot::of(name, &cell.histogram));
                }
            }
        }
        merged.into_values().collect()
    }
}

impl HistogramSnapshot {
    /// Summarises `histogram` under `name` into its serializable form.
    pub fn of(name: &str, histogram: &LatencyHistogram) -> Self {
        HistogramSnapshot {
            name: name.to_string(),
            count: histogram.count(),
            sum_ns: histogram.sum_ns().min(u128::from(u64::MAX)) as u64,
            min_ns: histogram.min_ns(),
            max_ns: histogram.max_ns(),
            p50_ns: histogram.percentile_ns(50.0),
            p95_ns: histogram.percentile_ns(95.0),
            p99_ns: histogram.percentile_ns(99.0),
            buckets: histogram
                .nonzero_buckets()
                .into_iter()
                .map(|(bound_ns, count)| HistogramBucket { bound_ns, count })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_collect_sorted() {
        let registry = Registry::new();
        registry.add("b.second", 2);
        registry.add("a.first", 1);
        registry.add("b.second", 3);
        assert_eq!(registry.counter("b.second"), 5);
        assert_eq!(registry.counter("missing"), 0);
        let counters = registry.collect_counters();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "a.first");
        assert_eq!(counters[0].value, 1);
        assert_eq!(counters[1].value, 5);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let registry = Registry::new();
        registry.set_gauge("depth", 7);
        registry.set_gauge("depth", 3);
        assert_eq!(registry.gauge("depth"), 3);
        registry.max_gauge("peak", 5);
        registry.max_gauge("peak", 2);
        assert_eq!(registry.gauge("peak"), 5);
    }

    #[test]
    fn histograms_split_by_class_and_reset_clears() {
        let registry = Registry::new();
        registry.observe("sim.latency", 100, HistogramClass::Deterministic);
        registry.observe("wall.latency", 200, HistogramClass::Timing);
        assert_eq!(
            registry
                .collect_histograms(HistogramClass::Deterministic)
                .len(),
            1
        );
        let timing = registry.collect_histograms(HistogramClass::Timing);
        assert_eq!(timing.len(), 1);
        assert_eq!(timing[0].count, 1);
        assert_eq!(timing[0].sum_ns, 200);
        registry.reset();
        assert!(registry.collect_counters().is_empty());
        assert!(registry
            .collect_histograms(HistogramClass::Timing)
            .is_empty());
        assert_eq!(registry.histogram("wall.latency"), None);
    }

    #[test]
    fn concurrent_adds_from_many_threads_sum_exactly() {
        let registry = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = registry.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        registry.add("contended", 1);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("join");
        }
        assert_eq!(registry.counter("contended"), 8000);
    }
}
