use serde::{Deserialize, Serialize};

/// A multi-bit operand stored in the CAM: a column index, the domain of its least
/// significant bit, its width and its signedness.
///
/// The bits of the operand occupy `width` consecutive racetrack domains of the cells
/// in column `col`, starting at `base`. Every row of the array holds an independent
/// value of the operand — this is the SIMD dimension of the associative processor.
///
/// # Example
///
/// ```
/// use ap::Operand;
///
/// let activation = Operand::new(3, 0, 4, false); // 4-bit unsigned activation in column 3
/// assert_eq!(activation.msb_domain(), 3);
/// assert!(activation.domains().eq(0..4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operand {
    /// Column of the CAM array holding this operand.
    pub col: usize,
    /// Domain (bit position inside the cell) of the least significant bit.
    pub base: usize,
    /// Width of the operand in bits (1..=63).
    pub width: u8,
    /// Whether the operand is a two's-complement signed value. Unsigned operands are
    /// zero-extended, signed operands sign-extended, when combined with wider values.
    pub signed: bool,
}

impl Operand {
    /// Creates an operand description.
    pub fn new(col: usize, base: usize, width: u8, signed: bool) -> Self {
        Operand {
            col,
            base,
            width,
            signed,
        }
    }

    /// Domain holding the most significant bit.
    pub fn msb_domain(&self) -> usize {
        self.base + self.width.saturating_sub(1) as usize
    }

    /// Iterator over the domains occupied by the operand, LSB first.
    pub fn domains(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.width as usize
    }

    /// The domain to align for bit `bit` of a (possibly wider) result:
    /// `Some(domain)` when the bit is physically stored or obtainable by sign
    /// extension, `None` when the bit is a constant zero (zero extension).
    pub fn domain_for_bit(&self, bit: usize) -> Option<usize> {
        if bit < self.width as usize {
            Some(self.base + bit)
        } else if self.signed {
            Some(self.msb_domain())
        } else {
            None
        }
    }

    /// Returns `true` when the two operands live in the same column and their domain
    /// ranges overlap.
    pub fn overlaps(&self, other: &Operand) -> bool {
        self.col == other.col
            && self.base < other.base + other.width as usize
            && other.base < self.base + self.width as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msb_and_domains() {
        let op = Operand::new(2, 4, 8, true);
        assert_eq!(op.msb_domain(), 11);
        assert_eq!(
            op.domains().collect::<Vec<_>>(),
            (4..12).collect::<Vec<_>>()
        );
    }

    #[test]
    fn domain_for_bit_zero_vs_sign_extension() {
        let unsigned = Operand::new(0, 0, 4, false);
        assert_eq!(unsigned.domain_for_bit(2), Some(2));
        assert_eq!(unsigned.domain_for_bit(6), None);
        let signed = Operand::new(0, 0, 4, true);
        assert_eq!(signed.domain_for_bit(6), Some(3));
    }

    #[test]
    fn overlap_detection() {
        let a = Operand::new(1, 0, 4, false);
        let b = Operand::new(1, 3, 4, false);
        let c = Operand::new(1, 4, 4, false);
        let d = Operand::new(2, 0, 4, false);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
    }
}
