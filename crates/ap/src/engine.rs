use crate::{ApError, ApInstruction, ApProgram, CarrySlot, Lut, LutKind, Operand, Result};
use cam::{BitPlaneArray, CamStats, PackedTags, SearchKey};

/// The word-parallel associative-processor execution engine.
///
/// `ApEngine` executes the same [`ApInstruction`]/[`ApProgram`] surface as the
/// scalar [`ApController`](crate::ApController), but over a
/// [`cam::BitPlaneArray`]: each masked-search / parallel-write LUT pass runs as
/// a handful of bitwise operations over `ceil(rows / 64)` packed words instead
/// of a per-row, per-cell loop, so functional simulation reaches hardware-model
/// speed on full-height arrays.
///
/// The engine issues *exactly* the same align/search/write sequence as the
/// controller, so its column reads, tag vectors and [`CamStats`] counters are
/// bit-identical to the scalar ground truth — pinned by the
/// `engine_equivalence` differential test suite. The controller remains the
/// reference; the engine is what the fast `functional` inference backend runs.
///
/// # Example
///
/// ```
/// use ap::{ApEngine, ApInstruction, CarrySlot, Operand};
/// use cam::{BitPlaneArray, CamTechnology};
///
/// # fn main() -> Result<(), ap::ApError> {
/// let array = BitPlaneArray::new(100, 4, 16, CamTechnology::default())?;
/// let mut ap = ApEngine::new(array);
/// let a = Operand::new(0, 0, 4, false);
/// let acc = Operand::new(1, 0, 6, true);
/// ap.load_column(&a, &vec![3; 100])?;
/// ap.load_column(&acc, &vec![10; 100])?;
/// ap.execute(&ApInstruction::SubInPlace { a, acc, carry: CarrySlot::new(2, 0) })?;
/// assert_eq!(ap.read_column(&acc)?, vec![7; 100]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApEngine {
    array: BitPlaneArray,
}

impl ApEngine {
    /// Creates an engine driving `array`.
    pub fn new(array: BitPlaneArray) -> Self {
        ApEngine { array }
    }

    /// Number of SIMD rows of the underlying array.
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Shared access to the underlying bit-plane array.
    pub fn array(&self) -> &BitPlaneArray {
        &self.array
    }

    /// Mutable access to the underlying bit-plane array.
    pub fn array_mut(&mut self) -> &mut BitPlaneArray {
        &mut self.array
    }

    /// Consumes the engine and returns the underlying array.
    pub fn into_inner(self) -> BitPlaneArray {
        self.array
    }

    /// Event counters accumulated by the underlying array.
    pub fn stats(&self) -> CamStats {
        self.array.stats()
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.array.reset_stats();
    }

    /// Stages one value per row into the operand's column (I/O, not compute).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::WrongValueCount`] if `values` does not hold one value per
    /// row, [`ApError::InvalidOperand`] for negative values in an unsigned operand,
    /// or a wrapped CAM error.
    pub fn load_column(&mut self, operand: &Operand, values: &[i64]) -> Result<()> {
        if values.len() != self.array.rows() {
            return Err(ApError::WrongValueCount {
                expected: self.array.rows(),
                found: values.len(),
            });
        }
        if !operand.signed {
            if let Some(&bad) = values.iter().find(|&&v| v < 0) {
                return Err(ApError::InvalidOperand {
                    reason: format!("negative value {bad} loaded into unsigned operand"),
                });
            }
        }
        self.array
            .write_column_values(operand.col, operand.base, operand.width, values)?;
        Ok(())
    }

    /// Reads one value per row from the operand's column.
    ///
    /// # Errors
    ///
    /// Returns a wrapped CAM error when the operand is out of range.
    pub fn read_column(&mut self, operand: &Operand) -> Result<Vec<i64>> {
        Ok(self.array.read_column_values(
            operand.col,
            operand.base,
            operand.width,
            operand.signed,
        )?)
    }

    /// Executes a whole program in order.
    ///
    /// When [`telemetry`] recording is on, books `ap.interpreter.runs` and
    /// `ap.interpreter.instructions` once per program (never per
    /// instruction); with recording off the cost is a single relaxed load.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; earlier instructions remain applied.
    pub fn run(&mut self, program: &ApProgram) -> Result<()> {
        if telemetry::enabled() {
            telemetry::count("ap.interpreter.runs", 1);
            telemetry::count("ap.interpreter.instructions", program.len() as u64);
        }
        for instruction in program.iter() {
            self.execute(instruction)?;
        }
        Ok(())
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::OperandConflict`] or [`ApError::InvalidOperand`] for
    /// malformed instructions, or a wrapped CAM error for out-of-range accesses.
    pub fn execute(&mut self, instruction: &ApInstruction) -> Result<()> {
        match instruction {
            ApInstruction::AddInPlace { a, acc, carry } => {
                self.binary_in_place(a, acc, *carry, LutKind::AddInPlace)
            }
            ApInstruction::SubInPlace { a, acc, carry } => {
                self.binary_in_place(a, acc, *carry, LutKind::SubInPlace)
            }
            ApInstruction::AddOutOfPlace { a, b, dests, carry } => {
                self.binary_out_of_place(a, b, dests, *carry, LutKind::AddOutOfPlace)
            }
            ApInstruction::SubOutOfPlace { a, b, dests, carry } => {
                self.binary_out_of_place(a, b, dests, *carry, LutKind::SubOutOfPlace)
            }
            ApInstruction::Copy { src, dests } => self.copy(src, dests),
            ApInstruction::Clear { dst } => self.clear(dst),
        }
    }

    fn validate_operand(op: &Operand) -> Result<()> {
        if op.width == 0 || op.width > 63 {
            return Err(ApError::InvalidOperand {
                reason: format!("operand width {} must be in 1..=63", op.width),
            });
        }
        Ok(())
    }

    fn clear_carry(&mut self, carry: CarrySlot) -> Result<()> {
        self.array.align_column(carry.col, carry.domain)?;
        let tags = PackedTags::all_set(self.array.rows());
        self.array
            .write_tagged(&tags, &SearchKey::new().with(carry.col, false))?;
        Ok(())
    }

    fn binary_in_place(
        &mut self,
        a: &Operand,
        acc: &Operand,
        carry: CarrySlot,
        kind: LutKind,
    ) -> Result<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(acc)?;
        if a.col == acc.col {
            return Err(ApError::OperandConflict {
                reason: "source and accumulator must live in different columns".to_string(),
            });
        }
        if carry.col == a.col || carry.col == acc.col {
            return Err(ApError::OperandConflict {
                reason: "carry column must differ from both operand columns".to_string(),
            });
        }
        self.clear_carry(carry)?;
        let lut = Lut::of(kind);
        // The search keys and write patterns of each pass are fixed for the whole
        // instruction (only the aligned domains change per bit), so they are built
        // once here instead of per pass inside the bit loop.
        let keyed_passes = |with_a: bool| -> Vec<(SearchKey, SearchKey)> {
            let passes = if with_a {
                lut.passes().to_vec()
            } else {
                lut.passes_with_constant_a(false)
            };
            passes
                .iter()
                .map(|pass| {
                    let mut key = SearchKey::new()
                        .with(carry.col, pass.key_carry)
                        .with(acc.col, pass.key_b);
                    if with_a {
                        key.set(a.col, pass.key_a);
                    }
                    let pattern = SearchKey::new()
                        .with(carry.col, pass.write_carry)
                        .with(acc.col, pass.write_result);
                    (key, pattern)
                })
                .collect()
        };
        let with_a_passes = keyed_passes(true);
        let constant_a_passes = keyed_passes(false);
        for bit in 0..acc.width as usize {
            self.array.align_column(acc.col, acc.base + bit)?;
            let a_domain = a.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.array.align_column(a.col, domain)?;
            }
            self.array.align_column(carry.col, carry.domain)?;
            let passes = match a_domain {
                Some(_) => &with_a_passes,
                None => &constant_a_passes,
            };
            for (key, pattern) in passes {
                let tags = self.array.search(key)?;
                self.array.write_tagged(&tags, pattern)?;
            }
        }
        Ok(())
    }

    fn binary_out_of_place(
        &mut self,
        a: &Operand,
        b: &Operand,
        dests: &[Operand],
        carry: CarrySlot,
        kind: LutKind,
    ) -> Result<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(b)?;
        let first = dests.first().ok_or_else(|| ApError::InvalidOperand {
            reason: "out-of-place operation needs at least one destination".to_string(),
        })?;
        for dest in dests {
            Self::validate_operand(dest)?;
            if dest.width != first.width {
                return Err(ApError::InvalidOperand {
                    reason: "all destinations must share the same width".to_string(),
                });
            }
            if dest.col == a.col || dest.col == b.col || dest.col == carry.col {
                return Err(ApError::OperandConflict {
                    reason: "destination columns must differ from sources and carry".to_string(),
                });
            }
        }
        if a.col == b.col {
            return Err(ApError::OperandConflict {
                reason: "the two source operands must live in different columns".to_string(),
            });
        }
        if carry.col == a.col || carry.col == b.col {
            return Err(ApError::OperandConflict {
                reason: "carry column must differ from both source columns".to_string(),
            });
        }
        self.clear_carry(carry)?;
        // Destinations must start from zero for the out-of-place tables to be valid.
        for dest in dests {
            self.clear(dest)?;
        }
        let lut = Lut::of(kind);
        let width = first.width as usize;
        // The applicable passes and their key/pattern pairs depend only on
        // whether the a/b bits are physically present (they flip once at each
        // operand's width boundary), so all four regimes are built up front
        // instead of per pass inside the bit loop.
        let keyed_passes = |a_present: bool, b_present: bool| -> Vec<(SearchKey, SearchKey)> {
            lut.passes()
                .iter()
                .filter(|pass| (a_present || !pass.key_a) && (b_present || !pass.key_b))
                .map(|pass| {
                    let mut key = SearchKey::new().with(carry.col, pass.key_carry);
                    if b_present {
                        key.set(b.col, pass.key_b);
                    }
                    if a_present {
                        key.set(a.col, pass.key_a);
                    }
                    let mut pattern = SearchKey::new().with(carry.col, pass.write_carry);
                    for dest in dests {
                        pattern.set(dest.col, pass.write_result);
                    }
                    (key, pattern)
                })
                .collect()
        };
        let regimes = [
            [keyed_passes(false, false), keyed_passes(false, true)],
            [keyed_passes(true, false), keyed_passes(true, true)],
        ];
        for bit in 0..width {
            let a_domain = a.domain_for_bit(bit);
            let b_domain = b.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.array.align_column(a.col, domain)?;
            }
            if let Some(domain) = b_domain {
                self.array.align_column(b.col, domain)?;
            }
            self.array.align_column(carry.col, carry.domain)?;
            for dest in dests {
                self.array.align_column(dest.col, dest.base + bit)?;
            }
            let passes = &regimes[usize::from(a_domain.is_some())][usize::from(b_domain.is_some())];
            for (key, pattern) in passes {
                let tags = self.array.search(key)?;
                self.array.write_tagged(&tags, pattern)?;
            }
        }
        Ok(())
    }

    fn copy(&mut self, src: &Operand, dests: &[Operand]) -> Result<()> {
        Self::validate_operand(src)?;
        let first = dests.first().ok_or_else(|| ApError::InvalidOperand {
            reason: "copy needs at least one destination".to_string(),
        })?;
        for dest in dests {
            Self::validate_operand(dest)?;
            if dest.width != first.width {
                return Err(ApError::InvalidOperand {
                    reason: "all copy destinations must share the same width".to_string(),
                });
            }
            if dest.col == src.col {
                return Err(ApError::OperandConflict {
                    reason: "copy destination must differ from the source column".to_string(),
                });
            }
        }
        let width = first.width as usize;
        // Keys and patterns are fixed for the whole instruction.
        let pattern_for = |bit_value: bool| {
            let mut pattern = SearchKey::new();
            for dest in dests {
                pattern.set(dest.col, bit_value);
            }
            pattern
        };
        let keyed = [false, true].map(|bit_value| {
            (
                SearchKey::new().with(src.col, bit_value),
                pattern_for(bit_value),
            )
        });
        for bit in 0..width {
            for dest in dests {
                self.array.align_column(dest.col, dest.base + bit)?;
            }
            match src.domain_for_bit(bit) {
                Some(domain) => {
                    self.array.align_column(src.col, domain)?;
                    for (key, pattern) in &keyed {
                        let tags = self.array.search(key)?;
                        self.array.write_tagged(&tags, pattern)?;
                    }
                }
                None => {
                    let tags = PackedTags::all_set(self.array.rows());
                    self.array.write_tagged(&tags, &keyed[0].1)?;
                }
            }
        }
        Ok(())
    }

    fn clear(&mut self, dst: &Operand) -> Result<()> {
        Self::validate_operand(dst)?;
        for bit in 0..dst.width as usize {
            self.array.align_column(dst.col, dst.base + bit)?;
            let tags = PackedTags::all_set(self.array.rows());
            self.array
                .write_tagged(&tags, &SearchKey::new().with(dst.col, false))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam::CamTechnology;
    use proptest::prelude::*;

    fn engine(rows: usize, cols: usize, domains: usize) -> ApEngine {
        ApEngine::new(
            BitPlaneArray::new(rows, cols, domains, CamTechnology::default()).expect("geometry"),
        )
    }

    #[test]
    fn add_in_place_matches_integer_addition() {
        let mut ap = engine(4, 4, 16);
        let a = Operand::new(0, 0, 4, false);
        let acc = Operand::new(1, 0, 8, true);
        ap.load_column(&a, &[1, 7, 15, 0]).expect("load");
        ap.load_column(&acc, &[5, -3, 100, -128]).expect("load");
        ap.execute(&ApInstruction::AddInPlace {
            a,
            acc,
            carry: CarrySlot::new(2, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&acc).expect("read"), vec![6, 4, 115, -128]);
    }

    #[test]
    fn word_parallel_add_covers_rows_beyond_one_word() {
        // 130 rows exercise two full tag words plus a partial one.
        let rows = 130;
        let mut ap = engine(rows, 4, 16);
        let a = Operand::new(0, 0, 5, false);
        let acc = Operand::new(1, 0, 9, true);
        let a_vals: Vec<i64> = (0..rows as i64).map(|i| i % 32).collect();
        let acc_vals: Vec<i64> = (0..rows as i64).map(|i| (i * 3) % 100 - 50).collect();
        ap.load_column(&a, &a_vals).expect("load");
        ap.load_column(&acc, &acc_vals).expect("load");
        ap.execute(&ApInstruction::AddInPlace {
            a,
            acc,
            carry: CarrySlot::new(2, 0),
        })
        .expect("exec");
        let expected: Vec<i64> = a_vals.iter().zip(&acc_vals).map(|(x, y)| x + y).collect();
        assert_eq!(ap.read_column(&acc).expect("read"), expected);
    }

    #[test]
    fn out_of_place_sub_and_copy_behave() {
        let mut ap = engine(3, 6, 16);
        let a = Operand::new(0, 0, 4, false);
        let b = Operand::new(1, 0, 4, false);
        let d = Operand::new(2, 0, 6, true);
        let c = Operand::new(3, 0, 6, true);
        ap.load_column(&a, &[5, 0, 15]).expect("load");
        ap.load_column(&b, &[3, 9, 15]).expect("load");
        ap.execute(&ApInstruction::SubOutOfPlace {
            a,
            b,
            dests: vec![d],
            carry: CarrySlot::new(5, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&d).expect("read"), vec![-2, 9, 0]);
        ap.execute(&ApInstruction::Copy {
            src: d,
            dests: vec![c],
        })
        .expect("exec");
        assert_eq!(ap.read_column(&c).expect("read"), vec![-2, 9, 0]);
        ap.execute(&ApInstruction::Clear { dst: c }).expect("exec");
        assert_eq!(ap.read_column(&c).expect("read"), vec![0, 0, 0]);
    }

    #[test]
    fn operand_conflicts_are_rejected() {
        let mut ap = engine(2, 4, 8);
        let err = ap
            .execute(&ApInstruction::AddInPlace {
                a: Operand::new(0, 0, 4, false),
                acc: Operand::new(0, 4, 4, true),
                carry: CarrySlot::new(1, 0),
            })
            .expect_err("same column must be rejected");
        assert!(matches!(err, ApError::OperandConflict { .. }));
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        let mut ap = engine(4, 2, 8);
        let a = Operand::new(0, 0, 4, false);
        assert!(matches!(
            ap.load_column(&a, &[1, 2]),
            Err(ApError::WrongValueCount {
                expected: 4,
                found: 2
            })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_add_in_place_matches_i64_on_odd_row_counts(
            rows in 1usize..131,
            seed in 0u64..1000,
        ) {
            let mut ap = engine(rows, 4, 16);
            let a = Operand::new(0, 0, 4, false);
            let acc = Operand::new(1, 0, 9, true);
            let a_vals: Vec<i64> = (0..rows as i64).map(|i| (i * 7 + seed as i64) % 16).collect();
            let acc_vals: Vec<i64> = (0..rows as i64).map(|i| (i * 13 + seed as i64) % 200 - 100).collect();
            ap.load_column(&a, &a_vals).expect("load");
            ap.load_column(&acc, &acc_vals).expect("load");
            ap.execute(&ApInstruction::AddInPlace { a, acc, carry: CarrySlot::new(2, 0) }).expect("exec");
            let expected: Vec<i64> = a_vals.iter().zip(&acc_vals).map(|(x, y)| x + y).collect();
            prop_assert_eq!(ap.read_column(&acc).expect("read"), expected);
        }
    }
}
