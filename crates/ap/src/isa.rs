use crate::Operand;
use serde::{Deserialize, Serialize};

/// Location of the single-bit carry/borrow cell used by an arithmetic instruction.
///
/// The carry is updated in place on every pass and propagates across the bit-serial
/// iterations of one instruction; it is cleared when the instruction starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CarrySlot {
    /// Column holding the carry/borrow bit.
    pub col: usize,
    /// Domain inside that column holding the carry/borrow bit.
    pub domain: usize,
}

impl CarrySlot {
    /// Creates a carry slot description.
    pub fn new(col: usize, domain: usize) -> Self {
        CarrySlot { col, domain }
    }
}

/// One associative-processor instruction.
///
/// Instructions operate on whole columns at once: every row of the CAM performs the
/// same operation on its own data (SIMD). Arithmetic instructions are executed
/// bit-serially with the lookup tables of [`Lut`](crate::Lut); staging instructions
/// move data in and out of the array and are charged as I/O rather than compute.
///
/// # Example
///
/// ```
/// use ap::{ApInstruction, CarrySlot, Operand};
///
/// let a = Operand::new(0, 0, 4, false);
/// let acc = Operand::new(1, 0, 6, true);
/// let add = ApInstruction::AddInPlace { a, acc, carry: CarrySlot::new(7, 0) };
/// assert!(add.is_arithmetic());
/// assert_eq!(add.result_width(), Some(6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ApInstruction {
    /// `acc ← acc + a`, destroying the previous accumulator value (8 cycles/bit).
    AddInPlace {
        /// Source operand (read only).
        a: Operand,
        /// Accumulator operand (read and overwritten).
        acc: Operand,
        /// Carry bit location.
        carry: CarrySlot,
    },
    /// `acc ← acc − a`, destroying the previous accumulator value (8 cycles/bit).
    SubInPlace {
        /// Source operand (read only, the subtrahend).
        a: Operand,
        /// Accumulator operand (read and overwritten, the minuend).
        acc: Operand,
        /// Borrow bit location.
        carry: CarrySlot,
    },
    /// `dest ← b + a` for every destination in `dests` (10 cycles/bit). Writing to
    /// several destinations at once costs the same number of cycles because the
    /// parallel write covers multiple columns; this is how the compiler materialises
    /// the copies needed to keep later operations in place (§IV-C).
    AddOutOfPlace {
        /// First source operand (read only).
        a: Operand,
        /// Second source operand (read only).
        b: Operand,
        /// Destination operands; all receive the same result.
        dests: Vec<Operand>,
        /// Carry bit location.
        carry: CarrySlot,
    },
    /// `dest ← b − a` for every destination in `dests` (10 cycles/bit).
    SubOutOfPlace {
        /// Subtrahend operand (read only).
        a: Operand,
        /// Minuend operand (read only).
        b: Operand,
        /// Destination operands; all receive the same result.
        dests: Vec<Operand>,
        /// Borrow bit location.
        carry: CarrySlot,
    },
    /// `dest ← src` for every destination (4 cycles/bit: one 0-pass and one 1-pass).
    Copy {
        /// Source operand.
        src: Operand,
        /// Destination operands.
        dests: Vec<Operand>,
    },
    /// Clears (zeroes) the destination operand in every row (2 cycles/bit).
    Clear {
        /// Operand region to clear.
        dst: Operand,
    },
}

impl ApInstruction {
    /// Returns `true` for add/sub instructions (the ones counted in the paper's
    /// `#Adds/Subs` column of Table II).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            ApInstruction::AddInPlace { .. }
                | ApInstruction::SubInPlace { .. }
                | ApInstruction::AddOutOfPlace { .. }
                | ApInstruction::SubOutOfPlace { .. }
        )
    }

    /// Returns `true` for instructions that keep their sources intact and write to a
    /// fresh destination.
    pub fn is_out_of_place(&self) -> bool {
        matches!(
            self,
            ApInstruction::AddOutOfPlace { .. } | ApInstruction::SubOutOfPlace { .. }
        )
    }

    /// Width in bits of the produced result, if the instruction produces one.
    pub fn result_width(&self) -> Option<u8> {
        match self {
            ApInstruction::AddInPlace { acc, .. } | ApInstruction::SubInPlace { acc, .. } => {
                Some(acc.width)
            }
            ApInstruction::AddOutOfPlace { dests, .. }
            | ApInstruction::SubOutOfPlace { dests, .. }
            | ApInstruction::Copy { dests, .. } => dests.first().map(|d| d.width),
            ApInstruction::Clear { dst } => Some(dst.width),
        }
    }

    /// The operands written by this instruction.
    pub fn destinations(&self) -> Vec<Operand> {
        match self {
            ApInstruction::AddInPlace { acc, .. } | ApInstruction::SubInPlace { acc, .. } => {
                vec![*acc]
            }
            ApInstruction::AddOutOfPlace { dests, .. }
            | ApInstruction::SubOutOfPlace { dests, .. }
            | ApInstruction::Copy { dests, .. } => dests.clone(),
            ApInstruction::Clear { dst } => vec![*dst],
        }
    }

    /// The operands read by this instruction.
    pub fn sources(&self) -> Vec<Operand> {
        match self {
            ApInstruction::AddInPlace { a, acc, .. } | ApInstruction::SubInPlace { a, acc, .. } => {
                vec![*a, *acc]
            }
            ApInstruction::AddOutOfPlace { a, b, .. }
            | ApInstruction::SubOutOfPlace { a, b, .. } => {
                vec![*a, *b]
            }
            ApInstruction::Copy { src, .. } => vec![*src],
            ApInstruction::Clear { .. } => vec![],
        }
    }

    /// Stable one-byte opcode used by the execution-trace encoding
    /// (`camdnn::trace`). New variants must extend — never renumber — this
    /// table, or recorded traces stop comparing across versions.
    pub fn kind_code(&self) -> u8 {
        match self {
            ApInstruction::AddInPlace { .. } => 1,
            ApInstruction::SubInPlace { .. } => 2,
            ApInstruction::AddOutOfPlace { .. } => 3,
            ApInstruction::SubOutOfPlace { .. } => 4,
            ApInstruction::Copy { .. } => 5,
            ApInstruction::Clear { .. } => 6,
        }
    }

    /// Human-readable mnemonic for diagnostics and trace divergence reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ApInstruction::AddInPlace { .. } => "add-in-place",
            ApInstruction::SubInPlace { .. } => "sub-in-place",
            ApInstruction::AddOutOfPlace { .. } => "add-out-of-place",
            ApInstruction::SubOutOfPlace { .. } => "sub-out-of-place",
            ApInstruction::Copy { .. } => "copy",
            ApInstruction::Clear { .. } => "clear",
        }
    }

    /// Every `(column, first domain, width)` region this instruction writes,
    /// including the carry slot of arithmetic instructions, sorted by column
    /// then domain — the regions the execution-trace recorder digests after
    /// executing the instruction.
    pub fn written_regions(&self) -> Vec<(usize, usize, u8)> {
        let mut regions: Vec<(usize, usize, u8)> = self
            .destinations()
            .iter()
            .map(|dest| (dest.col, dest.base, dest.width))
            .collect();
        match self {
            ApInstruction::AddInPlace { carry, .. }
            | ApInstruction::SubInPlace { carry, .. }
            | ApInstruction::AddOutOfPlace { carry, .. }
            | ApInstruction::SubOutOfPlace { carry, .. } => {
                regions.push((carry.col, carry.domain, 1));
            }
            ApInstruction::Copy { .. } | ApInstruction::Clear { .. } => {}
        }
        regions.sort_unstable();
        regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_add() -> ApInstruction {
        ApInstruction::AddOutOfPlace {
            a: Operand::new(0, 0, 4, false),
            b: Operand::new(1, 0, 4, false),
            dests: vec![Operand::new(2, 0, 5, true), Operand::new(3, 0, 5, true)],
            carry: CarrySlot::new(7, 0),
        }
    }

    #[test]
    fn classification() {
        let add = sample_add();
        assert!(add.is_arithmetic());
        assert!(add.is_out_of_place());
        let clear = ApInstruction::Clear {
            dst: Operand::new(0, 0, 4, false),
        };
        assert!(!clear.is_arithmetic());
        assert!(!clear.is_out_of_place());
    }

    #[test]
    fn sources_and_destinations() {
        let add = sample_add();
        assert_eq!(add.sources().len(), 2);
        assert_eq!(add.destinations().len(), 2);
        assert_eq!(add.result_width(), Some(5));

        let in_place = ApInstruction::SubInPlace {
            a: Operand::new(0, 0, 4, false),
            acc: Operand::new(1, 0, 6, true),
            carry: CarrySlot::new(7, 0),
        };
        assert_eq!(in_place.result_width(), Some(6));
        assert_eq!(in_place.destinations(), vec![Operand::new(1, 0, 6, true)]);
    }
}
