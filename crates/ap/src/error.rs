use thiserror::Error;

/// Errors produced while building or executing associative-processor programs.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum ApError {
    /// An operand description is invalid (zero width, width above 63 bits, …).
    #[error("invalid operand: {reason}")]
    InvalidOperand {
        /// Explanation of the problem.
        reason: String,
    },
    /// Two operands of one instruction overlap in a way the execution model forbids
    /// (for example the accumulator column also being the carry column).
    #[error("operand conflict: {reason}")]
    OperandConflict {
        /// Explanation of the conflict.
        reason: String,
    },
    /// The number of values supplied for a column load does not match the row count.
    #[error("expected {expected} values (one per row), found {found}")]
    WrongValueCount {
        /// Expected number of values (rows).
        expected: usize,
        /// Provided number of values.
        found: usize,
    },
    /// A compiled pass plan was executed on an array whose geometry differs
    /// from the one the plan was lowered for.
    #[error(
        "pass plan compiled for {plan_rows}x{plan_cols}x{plan_domains} \
         cannot run on a {rows}x{cols}x{domains} array"
    )]
    PlanMismatch {
        /// Rows the plan was compiled for.
        plan_rows: usize,
        /// Columns the plan was compiled for.
        plan_cols: usize,
        /// Domains per cell the plan was compiled for.
        plan_domains: usize,
        /// Rows of the executing array.
        rows: usize,
        /// Columns of the executing array.
        cols: usize,
        /// Domains per cell of the executing array.
        domains: usize,
    },
    /// An error bubbled up from the CAM array.
    #[error("cam error: {0}")]
    Cam(#[from] cam::CamError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let err = ApError::WrongValueCount {
            expected: 256,
            found: 4,
        };
        assert!(err.to_string().contains("256"));
        assert!(err.to_string().contains("4"));
    }

    #[test]
    fn cam_errors_are_wrapped() {
        let err = ApError::from(cam::CamError::EmptyGeometry {
            what: "number of rows",
        });
        assert!(matches!(err, ApError::Cam(_)));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApError>();
    }
}
