use crate::{ApInstruction, CostModel, InstructionCost};
use serde::{Deserialize, Serialize};

/// An ordered sequence of associative-processor instructions, typically the output
/// of compiling one convolution slice (one input channel of one layer).
///
/// # Example
///
/// ```
/// use ap::{ApInstruction, ApProgram, CarrySlot, CostModel, Operand};
/// use cam::CamTechnology;
///
/// let mut program = ApProgram::new();
/// program.push(ApInstruction::AddInPlace {
///     a: Operand::new(0, 0, 4, false),
///     acc: Operand::new(1, 0, 8, true),
///     carry: CarrySlot::new(2, 0),
/// });
/// assert_eq!(program.arithmetic_count(), 1);
/// let cost = program.cost(&CostModel::new(CamTechnology::default(), 256));
/// assert!(cost.latency_ns > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApProgram {
    instructions: Vec<ApInstruction>,
}

impl ApProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a program from a list of instructions.
    pub fn from_instructions(instructions: Vec<ApInstruction>) -> Self {
        ApProgram { instructions }
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: ApInstruction) {
        self.instructions.push(instruction);
    }

    /// Appends all instructions from another program.
    pub fn append(&mut self, other: &mut ApProgram) {
        self.instructions.append(&mut other.instructions);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, ApInstruction> {
        self.instructions.iter()
    }

    /// Borrowed view of the instruction list.
    pub fn instructions(&self) -> &[ApInstruction] {
        &self.instructions
    }

    /// Number of add/sub instructions (the paper's `#Adds/Subs` metric).
    pub fn arithmetic_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_arithmetic())
            .count()
    }

    /// Number of arithmetic instructions executed in place (8 cycles/bit).
    pub fn in_place_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_arithmetic() && !i.is_out_of_place())
            .count()
    }

    /// Number of arithmetic instructions executed out of place (10 cycles/bit).
    pub fn out_of_place_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_out_of_place())
            .count()
    }

    /// Estimated cost of the whole program under `model`.
    pub fn cost(&self, model: &CostModel) -> InstructionCost {
        model.program_cost(self.instructions.iter())
    }

    /// Largest column index referenced by the program, if any. Used to validate that
    /// a program fits in a CAM of a given width.
    pub fn max_column(&self) -> Option<usize> {
        self.instructions
            .iter()
            .flat_map(|i| {
                let mut cols: Vec<usize> = i.sources().iter().map(|o| o.col).collect();
                cols.extend(i.destinations().iter().map(|o| o.col));
                if let ApInstruction::AddInPlace { carry, .. }
                | ApInstruction::SubInPlace { carry, .. }
                | ApInstruction::AddOutOfPlace { carry, .. }
                | ApInstruction::SubOutOfPlace { carry, .. } = i
                {
                    cols.push(carry.col);
                }
                cols
            })
            .max()
    }
}

impl FromIterator<ApInstruction> for ApProgram {
    fn from_iter<I: IntoIterator<Item = ApInstruction>>(iter: I) -> Self {
        ApProgram {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ApProgram {
    type Item = &'a ApInstruction;
    type IntoIter = std::slice::Iter<'a, ApInstruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl IntoIterator for ApProgram {
    type Item = ApInstruction;
    type IntoIter = std::vec::IntoIter<ApInstruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarrySlot, Operand};
    use cam::CamTechnology;

    fn sample_program() -> ApProgram {
        let a = Operand::new(0, 0, 4, false);
        let b = Operand::new(1, 0, 4, false);
        let acc = Operand::new(2, 0, 8, true);
        let tmp = Operand::new(3, 0, 6, true);
        ApProgram::from_instructions(vec![
            ApInstruction::AddOutOfPlace {
                a,
                b,
                dests: vec![tmp],
                carry: CarrySlot::new(5, 0),
            },
            ApInstruction::AddInPlace {
                a: tmp,
                acc,
                carry: CarrySlot::new(5, 0),
            },
            ApInstruction::Clear { dst: tmp },
        ])
    }

    #[test]
    fn counts_classify_instructions() {
        let program = sample_program();
        assert_eq!(program.len(), 3);
        assert_eq!(program.arithmetic_count(), 2);
        assert_eq!(program.in_place_count(), 1);
        assert_eq!(program.out_of_place_count(), 1);
        assert!(!program.is_empty());
    }

    #[test]
    fn max_column_covers_carry_and_operands() {
        let program = sample_program();
        assert_eq!(program.max_column(), Some(5));
        assert_eq!(ApProgram::new().max_column(), None);
    }

    #[test]
    fn cost_equals_sum_of_instruction_costs() {
        let program = sample_program();
        let model = CostModel::new(CamTechnology::default(), 64);
        let total = program.cost(&model);
        let by_hand: u64 = program
            .iter()
            .map(|i| model.instruction_cost(i).stats.compute_cycles())
            .sum();
        assert_eq!(total.stats.compute_cycles(), by_hand);
    }

    #[test]
    fn collects_from_iterator_and_iterates() {
        let program: ApProgram = sample_program().into_iter().collect();
        assert_eq!(program.len(), 3);
        assert_eq!((&program).into_iter().count(), 3);
    }
}
