//! Associative processor (AP) built on top of a racetrack-memory CAM array.
//!
//! An associative processor performs bulk-bitwise arithmetic *in place* in a CAM by
//! decomposing the truth table of an operation into a sequence of masked-search /
//! parallel-write passes (a lookup table, LUT). Because every search compares all
//! rows in parallel, one pass updates every SIMD lane at once; multi-bit operands are
//! handled bit-serially by walking the racetrack domains of each cell.
//!
//! This crate provides:
//!
//! * [`Lut`] — the Table I lookup tables of the paper: in-place (8 cycles/bit) and
//!   out-of-place (10 cycles/bit) 1-bit addition and subtraction,
//! * [`ApInstruction`] / [`ApProgram`] — the instruction set the compiler targets,
//! * [`ApController`] — a functional, bit-accurate executor over a [`cam::CamArray`]
//!   (the scalar ground truth),
//! * [`ApEngine`] — the word-parallel executor over a [`cam::BitPlaneArray`]:
//!   the same instruction surface and the same [`cam::CamStats`] accounting, but
//!   each LUT pass runs as bitwise operations over 64 rows per word,
//! * [`CostModel`] — the closed-form cycle/energy model used when simulating full
//!   networks where bit-level execution would be prohibitively slow.
//!
//! # Example
//!
//! ```
//! use ap::{ApController, ApInstruction, CarrySlot, Operand};
//! use cam::{CamArray, CamTechnology};
//!
//! # fn main() -> Result<(), ap::ApError> {
//! // 4 SIMD rows, 4 operand columns, 16-bit deep cells.
//! let array = CamArray::new(4, 4, 16, CamTechnology::default())?;
//! let mut ap = ApController::new(array);
//!
//! let a = Operand::new(0, 0, 4, false);
//! let acc = Operand::new(1, 0, 6, true);
//! ap.load_column(&a, &[1, 2, 3, 4])?;
//! ap.load_column(&acc, &[10, 10, 10, 10])?;
//! ap.execute(&ApInstruction::AddInPlace { a, acc, carry: CarrySlot::new(3, 0) })?;
//! assert_eq!(ap.read_column(&acc)?, vec![11, 12, 13, 14]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod cost;
mod engine;
mod error;
mod isa;
mod lut;
mod operand;
mod plan;
mod program;

pub use controller::ApController;
pub use cost::{CostModel, InstructionCost};
pub use engine::ApEngine;
pub use error::ApError;
pub use isa::{ApInstruction, CarrySlot};
pub use lut::{Lut, LutEntry, LutKind};
pub use operand::Operand;
pub use plan::{PassPlan, PlanCompiler, PlanGeometry, PlanStats};
pub use program::ApProgram;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ApError>;
