use crate::{ApError, ApInstruction, ApProgram, CarrySlot, Lut, LutKind, Operand, Result};
use cam::{CamArray, CamStats, SearchKey, TagVector};

/// A functional, bit-accurate associative-processor controller.
///
/// The controller owns a [`CamArray`] and executes [`ApInstruction`]s against it by
/// issuing the masked-search / parallel-write passes of the corresponding
/// [`Lut`]. Every row of the array computes independently, so one instruction
/// performs the operation for all SIMD lanes (output feature-map positions) at once.
///
/// The controller is the ground truth used by tests and small-scale simulations; the
/// accelerator-level simulator uses the matching [`CostModel`](crate::CostModel) for
/// full networks.
///
/// # Example
///
/// ```
/// use ap::{ApController, ApInstruction, CarrySlot, Operand};
/// use cam::{CamArray, CamTechnology};
///
/// # fn main() -> Result<(), ap::ApError> {
/// let array = CamArray::new(2, 4, 16, CamTechnology::default())?;
/// let mut ap = ApController::new(array);
/// let a = Operand::new(0, 0, 4, false);
/// let acc = Operand::new(1, 0, 6, true);
/// ap.load_column(&a, &[3, 4])?;
/// ap.load_column(&acc, &[0, 0])?;
/// ap.execute(&ApInstruction::SubInPlace { a, acc, carry: CarrySlot::new(2, 0) })?;
/// assert_eq!(ap.read_column(&acc)?, vec![-3, -4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApController {
    array: CamArray,
}

impl ApController {
    /// Creates a controller driving `array`.
    pub fn new(array: CamArray) -> Self {
        ApController { array }
    }

    /// Number of SIMD rows of the underlying array.
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Shared access to the underlying CAM array.
    pub fn array(&self) -> &CamArray {
        &self.array
    }

    /// Mutable access to the underlying CAM array.
    pub fn array_mut(&mut self) -> &mut CamArray {
        &mut self.array
    }

    /// Consumes the controller and returns the underlying array.
    pub fn into_inner(self) -> CamArray {
        self.array
    }

    /// Event counters accumulated by the underlying array.
    pub fn stats(&self) -> CamStats {
        self.array.stats()
    }

    /// Resets the event counters.
    pub fn reset_stats(&mut self) {
        self.array.reset_stats();
    }

    /// Stages one value per row into the operand's column (I/O, not compute).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::WrongValueCount`] if `values` does not hold one value per
    /// row, [`ApError::InvalidOperand`] for negative values in an unsigned operand,
    /// or a wrapped CAM error.
    pub fn load_column(&mut self, operand: &Operand, values: &[i64]) -> Result<()> {
        if values.len() != self.array.rows() {
            return Err(ApError::WrongValueCount {
                expected: self.array.rows(),
                found: values.len(),
            });
        }
        if !operand.signed {
            if let Some(&bad) = values.iter().find(|&&v| v < 0) {
                return Err(ApError::InvalidOperand {
                    reason: format!("negative value {bad} loaded into unsigned operand"),
                });
            }
        }
        self.array
            .write_column_values(operand.col, operand.base, operand.width, values)?;
        Ok(())
    }

    /// Reads one value per row from the operand's column.
    ///
    /// # Errors
    ///
    /// Returns a wrapped CAM error when the operand is out of range.
    pub fn read_column(&mut self, operand: &Operand) -> Result<Vec<i64>> {
        Ok(self.array.read_column_values(
            operand.col,
            operand.base,
            operand.width,
            operand.signed,
        )?)
    }

    /// Executes a whole program in order.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; earlier instructions remain applied.
    pub fn run(&mut self, program: &ApProgram) -> Result<()> {
        for instruction in program.iter() {
            self.execute(instruction)?;
        }
        Ok(())
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::OperandConflict`] or [`ApError::InvalidOperand`] for
    /// malformed instructions, or a wrapped CAM error for out-of-range accesses.
    pub fn execute(&mut self, instruction: &ApInstruction) -> Result<()> {
        match instruction {
            ApInstruction::AddInPlace { a, acc, carry } => {
                self.binary_in_place(a, acc, *carry, LutKind::AddInPlace)
            }
            ApInstruction::SubInPlace { a, acc, carry } => {
                self.binary_in_place(a, acc, *carry, LutKind::SubInPlace)
            }
            ApInstruction::AddOutOfPlace { a, b, dests, carry } => {
                self.binary_out_of_place(a, b, dests, *carry, LutKind::AddOutOfPlace)
            }
            ApInstruction::SubOutOfPlace { a, b, dests, carry } => {
                self.binary_out_of_place(a, b, dests, *carry, LutKind::SubOutOfPlace)
            }
            ApInstruction::Copy { src, dests } => self.copy(src, dests),
            ApInstruction::Clear { dst } => self.clear(dst),
        }
    }

    fn validate_operand(op: &Operand) -> Result<()> {
        if op.width == 0 || op.width > 63 {
            return Err(ApError::InvalidOperand {
                reason: format!("operand width {} must be in 1..=63", op.width),
            });
        }
        Ok(())
    }

    fn clear_carry(&mut self, carry: CarrySlot) -> Result<()> {
        self.array.align_column(carry.col, carry.domain)?;
        let tags = TagVector::all_set(self.array.rows());
        self.array
            .write_tagged(&tags, &SearchKey::new().with(carry.col, false))?;
        Ok(())
    }

    fn binary_in_place(
        &mut self,
        a: &Operand,
        acc: &Operand,
        carry: CarrySlot,
        kind: LutKind,
    ) -> Result<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(acc)?;
        if a.col == acc.col {
            return Err(ApError::OperandConflict {
                reason: "source and accumulator must live in different columns".to_string(),
            });
        }
        if carry.col == a.col || carry.col == acc.col {
            return Err(ApError::OperandConflict {
                reason: "carry column must differ from both operand columns".to_string(),
            });
        }
        self.clear_carry(carry)?;
        let lut = Lut::of(kind);
        for bit in 0..acc.width as usize {
            self.array.align_column(acc.col, acc.base + bit)?;
            let a_domain = a.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.array.align_column(a.col, domain)?;
            }
            self.array.align_column(carry.col, carry.domain)?;
            let passes = match a_domain {
                Some(_) => lut.passes().to_vec(),
                None => lut.passes_with_constant_a(false),
            };
            for pass in passes {
                let mut key = SearchKey::new()
                    .with(carry.col, pass.key_carry)
                    .with(acc.col, pass.key_b);
                if a_domain.is_some() {
                    key.set(a.col, pass.key_a);
                }
                let tags = self.array.search(&key)?;
                let pattern = SearchKey::new()
                    .with(carry.col, pass.write_carry)
                    .with(acc.col, pass.write_result);
                self.array.write_tagged(&tags, &pattern)?;
            }
        }
        Ok(())
    }

    fn binary_out_of_place(
        &mut self,
        a: &Operand,
        b: &Operand,
        dests: &[Operand],
        carry: CarrySlot,
        kind: LutKind,
    ) -> Result<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(b)?;
        let first = dests.first().ok_or_else(|| ApError::InvalidOperand {
            reason: "out-of-place operation needs at least one destination".to_string(),
        })?;
        for dest in dests {
            Self::validate_operand(dest)?;
            if dest.width != first.width {
                return Err(ApError::InvalidOperand {
                    reason: "all destinations must share the same width".to_string(),
                });
            }
            if dest.col == a.col || dest.col == b.col || dest.col == carry.col {
                return Err(ApError::OperandConflict {
                    reason: "destination columns must differ from sources and carry".to_string(),
                });
            }
        }
        if a.col == b.col {
            return Err(ApError::OperandConflict {
                reason: "the two source operands must live in different columns".to_string(),
            });
        }
        if carry.col == a.col || carry.col == b.col {
            return Err(ApError::OperandConflict {
                reason: "carry column must differ from both source columns".to_string(),
            });
        }
        self.clear_carry(carry)?;
        // Destinations must start from zero for the out-of-place tables to be valid.
        for dest in dests {
            self.clear(dest)?;
        }
        let lut = Lut::of(kind);
        let width = first.width as usize;
        for bit in 0..width {
            let a_domain = a.domain_for_bit(bit);
            let b_domain = b.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.array.align_column(a.col, domain)?;
            }
            if let Some(domain) = b_domain {
                self.array.align_column(b.col, domain)?;
            }
            self.array.align_column(carry.col, carry.domain)?;
            for dest in dests {
                self.array.align_column(dest.col, dest.base + bit)?;
            }
            for pass in lut.passes() {
                let a_ok = a_domain.is_some() || !pass.key_a;
                let b_ok = b_domain.is_some() || !pass.key_b;
                if !a_ok || !b_ok {
                    continue;
                }
                let mut key = SearchKey::new().with(carry.col, pass.key_carry);
                if b_domain.is_some() {
                    key.set(b.col, pass.key_b);
                }
                if a_domain.is_some() {
                    key.set(a.col, pass.key_a);
                }
                let tags = self.array.search(&key)?;
                let mut pattern = SearchKey::new().with(carry.col, pass.write_carry);
                for dest in dests {
                    pattern.set(dest.col, pass.write_result);
                }
                self.array.write_tagged(&tags, &pattern)?;
            }
        }
        Ok(())
    }

    fn copy(&mut self, src: &Operand, dests: &[Operand]) -> Result<()> {
        Self::validate_operand(src)?;
        let first = dests.first().ok_or_else(|| ApError::InvalidOperand {
            reason: "copy needs at least one destination".to_string(),
        })?;
        for dest in dests {
            Self::validate_operand(dest)?;
            if dest.width != first.width {
                return Err(ApError::InvalidOperand {
                    reason: "all copy destinations must share the same width".to_string(),
                });
            }
            if dest.col == src.col {
                return Err(ApError::OperandConflict {
                    reason: "copy destination must differ from the source column".to_string(),
                });
            }
        }
        let width = first.width as usize;
        for bit in 0..width {
            for dest in dests {
                self.array.align_column(dest.col, dest.base + bit)?;
            }
            match src.domain_for_bit(bit) {
                Some(domain) => {
                    self.array.align_column(src.col, domain)?;
                    for bit_value in [false, true] {
                        let tags = self
                            .array
                            .search(&SearchKey::new().with(src.col, bit_value))?;
                        let mut pattern = SearchKey::new();
                        for dest in dests {
                            pattern.set(dest.col, bit_value);
                        }
                        self.array.write_tagged(&tags, &pattern)?;
                    }
                }
                None => {
                    let tags = TagVector::all_set(self.array.rows());
                    let mut pattern = SearchKey::new();
                    for dest in dests {
                        pattern.set(dest.col, false);
                    }
                    self.array.write_tagged(&tags, &pattern)?;
                }
            }
        }
        Ok(())
    }

    fn clear(&mut self, dst: &Operand) -> Result<()> {
        Self::validate_operand(dst)?;
        for bit in 0..dst.width as usize {
            self.array.align_column(dst.col, dst.base + bit)?;
            let tags = TagVector::all_set(self.array.rows());
            self.array
                .write_tagged(&tags, &SearchKey::new().with(dst.col, false))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam::CamTechnology;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn controller(rows: usize, cols: usize, domains: usize) -> ApController {
        ApController::new(
            CamArray::new(rows, cols, domains, CamTechnology::default()).expect("geometry"),
        )
    }

    #[test]
    fn add_in_place_matches_integer_addition() {
        let mut ap = controller(4, 4, 16);
        let a = Operand::new(0, 0, 4, false);
        let acc = Operand::new(1, 0, 8, true);
        ap.load_column(&a, &[1, 7, 15, 0]).expect("load");
        ap.load_column(&acc, &[5, -3, 100, -128]).expect("load");
        ap.execute(&ApInstruction::AddInPlace {
            a,
            acc,
            carry: CarrySlot::new(2, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&acc).expect("read"), vec![6, 4, 115, -128]);
    }

    #[test]
    fn sub_in_place_matches_integer_subtraction() {
        let mut ap = controller(3, 4, 16);
        let a = Operand::new(0, 0, 5, true);
        let acc = Operand::new(1, 0, 8, true);
        ap.load_column(&a, &[3, -7, 15]).expect("load");
        ap.load_column(&acc, &[10, 10, -20]).expect("load");
        ap.execute(&ApInstruction::SubInPlace {
            a,
            acc,
            carry: CarrySlot::new(2, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&acc).expect("read"), vec![7, 17, -35]);
    }

    #[test]
    fn add_out_of_place_preserves_sources_and_fills_all_destinations() {
        let mut ap = controller(2, 6, 16);
        let a = Operand::new(0, 0, 4, false);
        let b = Operand::new(1, 0, 4, false);
        let d0 = Operand::new(2, 0, 6, true);
        let d1 = Operand::new(3, 0, 6, true);
        ap.load_column(&a, &[9, 2]).expect("load");
        ap.load_column(&b, &[4, 11]).expect("load");
        // Destinations hold garbage that must be cleared by the instruction.
        ap.load_column(&d0, &[31, 17]).expect("load");
        ap.execute(&ApInstruction::AddOutOfPlace {
            a,
            b,
            dests: vec![d0, d1],
            carry: CarrySlot::new(5, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&d0).expect("read"), vec![13, 13]);
        assert_eq!(ap.read_column(&d1).expect("read"), vec![13, 13]);
        assert_eq!(ap.read_column(&a).expect("read"), vec![9, 2]);
        assert_eq!(ap.read_column(&b).expect("read"), vec![4, 11]);
    }

    #[test]
    fn sub_out_of_place_computes_b_minus_a() {
        let mut ap = controller(3, 5, 16);
        let a = Operand::new(0, 0, 4, false);
        let b = Operand::new(1, 0, 4, false);
        let d = Operand::new(2, 0, 6, true);
        ap.load_column(&a, &[5, 0, 15]).expect("load");
        ap.load_column(&b, &[3, 9, 15]).expect("load");
        ap.execute(&ApInstruction::SubOutOfPlace {
            a,
            b,
            dests: vec![d],
            carry: CarrySlot::new(4, 0),
        })
        .expect("exec");
        assert_eq!(ap.read_column(&d).expect("read"), vec![-2, 9, 0]);
    }

    #[test]
    fn copy_replicates_the_source() {
        let mut ap = controller(3, 4, 16);
        let src = Operand::new(0, 0, 5, true);
        let d0 = Operand::new(1, 0, 5, true);
        let d1 = Operand::new(2, 4, 5, true);
        ap.load_column(&src, &[-7, 3, 15]).expect("load");
        ap.execute(&ApInstruction::Copy {
            src,
            dests: vec![d0, d1],
        })
        .expect("exec");
        assert_eq!(ap.read_column(&d0).expect("read"), vec![-7, 3, 15]);
        assert_eq!(ap.read_column(&d1).expect("read"), vec![-7, 3, 15]);
    }

    #[test]
    fn clear_zeroes_every_row() {
        let mut ap = controller(2, 2, 8);
        let dst = Operand::new(0, 0, 6, true);
        ap.load_column(&dst, &[19, -11]).expect("load");
        ap.execute(&ApInstruction::Clear { dst }).expect("exec");
        assert_eq!(ap.read_column(&dst).expect("read"), vec![0, 0]);
    }

    #[test]
    fn operand_conflicts_are_rejected() {
        let mut ap = controller(2, 4, 8);
        let a = Operand::new(0, 0, 4, false);
        let acc = Operand::new(0, 4, 4, true);
        let err = ap
            .execute(&ApInstruction::AddInPlace {
                a,
                acc,
                carry: CarrySlot::new(1, 0),
            })
            .expect_err("same column must be rejected");
        assert!(matches!(err, ApError::OperandConflict { .. }));

        let err = ap
            .execute(&ApInstruction::AddInPlace {
                a: Operand::new(0, 0, 4, false),
                acc: Operand::new(1, 0, 4, true),
                carry: CarrySlot::new(1, 7),
            })
            .expect_err("carry sharing the accumulator column must be rejected");
        assert!(matches!(err, ApError::OperandConflict { .. }));
    }

    #[test]
    fn wrong_value_count_is_rejected() {
        let mut ap = controller(4, 2, 8);
        let a = Operand::new(0, 0, 4, false);
        assert!(matches!(
            ap.load_column(&a, &[1, 2]),
            Err(ApError::WrongValueCount {
                expected: 4,
                found: 2
            })
        ));
    }

    #[test]
    fn unsigned_operand_rejects_negative_values() {
        let mut ap = controller(2, 2, 8);
        let a = Operand::new(0, 0, 4, false);
        assert!(matches!(
            ap.load_column(&a, &[1, -1]),
            Err(ApError::InvalidOperand { .. })
        ));
    }

    #[test]
    fn accumulation_chain_matches_reference() {
        // Emulates the accumulation phase: acc starts at 0 and sums four columns.
        let mut ap = controller(8, 8, 24);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut reference = vec![0i64; 8];
        let acc = Operand::new(6, 0, 12, true);
        ap.execute(&ApInstruction::Clear { dst: acc })
            .expect("clear");
        for col in 0..4 {
            let values: Vec<i64> = (0..8).map(|_| rng.gen_range(0..256)).collect();
            let op = Operand::new(col, 0, 8, false);
            ap.load_column(&op, &values).expect("load");
            for (r, v) in reference.iter_mut().zip(&values) {
                *r += v;
            }
            ap.execute(&ApInstruction::AddInPlace {
                a: op,
                acc,
                carry: CarrySlot::new(7, 0),
            })
            .expect("exec");
        }
        assert_eq!(ap.read_column(&acc).expect("read"), reference);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_add_in_place_matches_i64(
            a_vals in proptest::collection::vec(0i64..16, 4),
            acc_vals in proptest::collection::vec(-100i64..100, 4),
        ) {
            let mut ap = controller(4, 4, 16);
            let a = Operand::new(0, 0, 4, false);
            let acc = Operand::new(1, 0, 9, true);
            ap.load_column(&a, &a_vals).expect("load");
            ap.load_column(&acc, &acc_vals).expect("load");
            ap.execute(&ApInstruction::AddInPlace { a, acc, carry: CarrySlot::new(2, 0) }).expect("exec");
            let expected: Vec<i64> = a_vals.iter().zip(&acc_vals).map(|(x, y)| x + y).collect();
            prop_assert_eq!(ap.read_column(&acc).expect("read"), expected);
        }

        #[test]
        fn prop_sub_out_of_place_matches_i64(
            a_vals in proptest::collection::vec(0i64..128, 4),
            b_vals in proptest::collection::vec(0i64..128, 4),
        ) {
            let mut ap = controller(4, 6, 16);
            let a = Operand::new(0, 0, 7, false);
            let b = Operand::new(1, 0, 7, false);
            let d = Operand::new(2, 0, 9, true);
            ap.load_column(&a, &a_vals).expect("load");
            ap.load_column(&b, &b_vals).expect("load");
            ap.execute(&ApInstruction::SubOutOfPlace { a, b, dests: vec![d], carry: CarrySlot::new(5, 0) })
                .expect("exec");
            let expected: Vec<i64> = a_vals.iter().zip(&b_vals).map(|(x, y)| y - x).collect();
            prop_assert_eq!(ap.read_column(&d).expect("read"), expected);
        }
    }
}
