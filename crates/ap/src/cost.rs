use crate::{ApInstruction, Lut, LutKind};
use cam::{CamStats, CamTechnology};
use serde::{Deserialize, Serialize};

/// Closed-form cost of one instruction, expressed as the CAM event counters it
/// generates plus the derived latency and energy.
///
/// The functional executor ([`ApController`](crate::ApController)) produces exact
/// counters; this analytical model is used by the accelerator-level simulator where
/// executing every bit of a full ImageNet network would be prohibitively slow. Both
/// paths share the [`Lut`] pass counts so cycle counts agree; the analytical model
/// estimates the data-dependent *written bits* by assuming half of the rows are
/// rewritten per processed bit, which is the expectation for uniformly distributed
/// operands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionCost {
    /// Estimated CAM event counters.
    pub stats: CamStats,
    /// Latency in nanoseconds (serial execution of the instruction).
    pub latency_ns: f64,
    /// Dynamic energy in femtojoules.
    pub energy_fj: f64,
}

/// Analytical cycle/energy model for AP instructions.
///
/// # Example
///
/// ```
/// use ap::{ApInstruction, CarrySlot, CostModel, Operand};
/// use cam::CamTechnology;
///
/// let model = CostModel::new(CamTechnology::default(), 256);
/// let add = ApInstruction::AddInPlace {
///     a: Operand::new(0, 0, 4, false),
///     acc: Operand::new(1, 0, 8, true),
///     carry: CarrySlot::new(2, 0),
/// };
/// let cost = model.instruction_cost(&add);
/// assert!(cost.latency_ns > 0.0);
/// assert!(cost.energy_fj > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    tech: CamTechnology,
    rows: usize,
}

impl CostModel {
    /// Creates a cost model for an AP with `rows` active SIMD rows.
    pub fn new(tech: CamTechnology, rows: usize) -> Self {
        CostModel { tech, rows }
    }

    /// The technology point used by the model.
    pub fn technology(&self) -> &CamTechnology {
        &self.tech
    }

    /// Number of active rows assumed by the model.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cycles per bit of the given operation kind (search + write cycles).
    pub fn cycles_per_bit(kind: LutKind) -> u64 {
        Lut::of(kind).cycles_per_bit()
    }

    /// Estimated cost of a single instruction.
    pub fn instruction_cost(&self, instruction: &ApInstruction) -> InstructionCost {
        let rows = self.rows as u64;
        let mut stats = CamStats::new();
        match instruction {
            ApInstruction::AddInPlace { a, acc, .. } | ApInstruction::SubInPlace { a, acc, .. } => {
                let kind = if matches!(instruction, ApInstruction::AddInPlace { .. }) {
                    LutKind::AddInPlace
                } else {
                    LutKind::SubInPlace
                };
                let lut = Lut::of(kind);
                // Carry clear.
                stats.write_cycles += 1;
                stats.written_bits += rows;
                for bit in 0..acc.width as usize {
                    let (passes, key_bits) = if a.domain_for_bit(bit).is_some() {
                        (lut.passes().len() as u64, 3)
                    } else {
                        (lut.passes_with_constant_a(false).len() as u64, 2)
                    };
                    stats.search_cycles += passes;
                    stats.searched_bits += passes * key_bits * rows;
                    stats.write_cycles += passes;
                    // Expected: about half the rows rewritten (2 bits each) per result bit.
                    stats.written_bits += rows;
                    stats.shifts += 3;
                }
            }
            ApInstruction::AddOutOfPlace { a, b, dests, .. }
            | ApInstruction::SubOutOfPlace { a, b, dests, .. } => {
                let kind = if matches!(instruction, ApInstruction::AddOutOfPlace { .. }) {
                    LutKind::AddOutOfPlace
                } else {
                    LutKind::SubOutOfPlace
                };
                let lut = Lut::of(kind);
                let width = dests.first().map(|d| d.width).unwrap_or(0) as usize;
                let n_dests = dests.len().max(1) as u64;
                // Carry clear plus destination clears.
                stats.write_cycles += 1 + width as u64;
                stats.written_bits += rows + width as u64 * rows * n_dests;
                for bit in 0..width {
                    let a_known = a.domain_for_bit(bit).is_some();
                    let b_known = b.domain_for_bit(bit).is_some();
                    let passes = lut
                        .passes()
                        .iter()
                        .filter(|p| (a_known || !p.key_a) && (b_known || !p.key_b))
                        .count() as u64;
                    let key_bits = 1 + u64::from(a_known) + u64::from(b_known);
                    stats.search_cycles += passes;
                    stats.searched_bits += passes * key_bits * rows;
                    stats.write_cycles += passes;
                    stats.written_bits += rows * n_dests;
                    stats.shifts += 2 + n_dests;
                }
            }
            ApInstruction::Copy { src, dests } => {
                let width = dests.first().map(|d| d.width).unwrap_or(0) as usize;
                let n_dests = dests.len().max(1) as u64;
                for bit in 0..width {
                    if src.domain_for_bit(bit).is_some() {
                        stats.search_cycles += 2;
                        stats.searched_bits += 2 * rows;
                        stats.write_cycles += 2;
                        stats.written_bits += rows * n_dests;
                    } else {
                        stats.write_cycles += 1;
                        stats.written_bits += rows * n_dests;
                    }
                    stats.shifts += 1 + n_dests;
                }
            }
            ApInstruction::Clear { dst } => {
                stats.write_cycles += dst.width as u64;
                stats.written_bits += dst.width as u64 * rows;
                stats.shifts += dst.width as u64;
            }
        }
        InstructionCost {
            stats,
            latency_ns: stats.latency_ns(&self.tech),
            energy_fj: stats.energy_fj(&self.tech),
        }
    }

    /// Total cost of a sequence of instructions.
    pub fn program_cost<'a, I>(&self, instructions: I) -> InstructionCost
    where
        I: IntoIterator<Item = &'a ApInstruction>,
    {
        let mut stats = CamStats::new();
        for instruction in instructions {
            stats += self.instruction_cost(instruction).stats;
        }
        InstructionCost {
            stats,
            latency_ns: stats.latency_ns(&self.tech),
            energy_fj: stats.energy_fj(&self.tech),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CarrySlot, Operand};

    fn model() -> CostModel {
        CostModel::new(CamTechnology::default(), 256)
    }

    #[test]
    fn in_place_add_is_eight_cycles_per_full_bit() {
        let m = model();
        let add = ApInstruction::AddInPlace {
            a: Operand::new(0, 0, 8, false),
            acc: Operand::new(1, 0, 8, true),
            carry: CarrySlot::new(2, 0),
        };
        let cost = m.instruction_cost(&add);
        // 8 bits x 8 cycles + 1 carry-clear cycle.
        assert_eq!(cost.stats.compute_cycles(), 8 * 8 + 1);
    }

    #[test]
    fn out_of_place_add_is_ten_cycles_per_full_bit_plus_clears() {
        let m = model();
        let add = ApInstruction::AddOutOfPlace {
            a: Operand::new(0, 0, 8, false),
            b: Operand::new(1, 0, 8, false),
            dests: vec![Operand::new(2, 0, 8, true)],
            carry: CarrySlot::new(3, 0),
        };
        let cost = m.instruction_cost(&add);
        // 8 bits x 10 cycles + 1 carry clear + 8 destination clears.
        assert_eq!(cost.stats.compute_cycles(), 8 * 10 + 1 + 8);
    }

    #[test]
    fn in_place_is_cheaper_than_out_of_place() {
        let m = model();
        let a = Operand::new(0, 0, 8, false);
        let in_place = ApInstruction::AddInPlace {
            a,
            acc: Operand::new(1, 0, 8, true),
            carry: CarrySlot::new(2, 0),
        };
        let out_of_place = ApInstruction::AddOutOfPlace {
            a,
            b: Operand::new(1, 0, 8, false),
            dests: vec![Operand::new(2, 0, 8, true)],
            carry: CarrySlot::new(3, 0),
        };
        assert!(
            m.instruction_cost(&in_place).latency_ns < m.instruction_cost(&out_of_place).latency_ns
        );
        assert!(
            m.instruction_cost(&in_place).energy_fj < m.instruction_cost(&out_of_place).energy_fj
        );
    }

    #[test]
    fn zero_extension_reduces_cost() {
        let m = model();
        let narrow = ApInstruction::AddInPlace {
            a: Operand::new(0, 0, 4, false),
            acc: Operand::new(1, 0, 12, true),
            carry: CarrySlot::new(2, 0),
        };
        let wide = ApInstruction::AddInPlace {
            a: Operand::new(0, 0, 12, true),
            acc: Operand::new(1, 0, 12, true),
            carry: CarrySlot::new(2, 0),
        };
        assert!(
            m.instruction_cost(&narrow).stats.compute_cycles()
                < m.instruction_cost(&wide).stats.compute_cycles()
        );
    }

    #[test]
    fn multi_destination_write_costs_the_same_cycles() {
        let m = model();
        let single = ApInstruction::AddOutOfPlace {
            a: Operand::new(0, 0, 8, false),
            b: Operand::new(1, 0, 8, false),
            dests: vec![Operand::new(2, 0, 8, true)],
            carry: CarrySlot::new(4, 0),
        };
        let double = ApInstruction::AddOutOfPlace {
            a: Operand::new(0, 0, 8, false),
            b: Operand::new(1, 0, 8, false),
            dests: vec![Operand::new(2, 0, 8, true), Operand::new(3, 0, 8, true)],
            carry: CarrySlot::new(4, 0),
        };
        let c1 = m.instruction_cost(&single);
        let c2 = m.instruction_cost(&double);
        assert_eq!(c1.stats.compute_cycles(), c2.stats.compute_cycles());
        assert!(c2.stats.written_bits > c1.stats.written_bits);
    }

    #[test]
    fn program_cost_accumulates() {
        let m = model();
        let add = ApInstruction::AddInPlace {
            a: Operand::new(0, 0, 4, false),
            acc: Operand::new(1, 0, 8, true),
            carry: CarrySlot::new(2, 0),
        };
        let single = m.instruction_cost(&add);
        let program = m.program_cost([&add, &add, &add]);
        assert_eq!(
            program.stats.compute_cycles(),
            3 * single.stats.compute_cycles()
        );
        assert!((program.latency_ns - 3.0 * single.latency_ns).abs() < 1e-9);
    }
}
