use serde::{Deserialize, Serialize};

/// Which arithmetic lookup table is being described.
///
/// The in-place variants overwrite one input operand with the result and need four
/// search/write passes per bit (8 cycles); the out-of-place variants write the result
/// into a fresh column and need five passes per bit (10 cycles), matching Table I of
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LutKind {
    /// `B ← B + A` with carry column `Cr` updated in place.
    AddInPlace,
    /// `R ← B + A` with `R` a fresh (zero-initialised) column and `Cr` updated in place.
    AddOutOfPlace,
    /// `B ← B − A` with borrow column `Br` updated in place.
    SubInPlace,
    /// `R ← B − A` with `R` a fresh (zero-initialised) column and `Br` updated in place.
    SubOutOfPlace,
}

impl LutKind {
    /// Whether this table overwrites the `B` operand (`true`) or writes into a fresh
    /// result column (`false`).
    pub fn is_in_place(self) -> bool {
        matches!(self, LutKind::AddInPlace | LutKind::SubInPlace)
    }

    /// Whether this table performs subtraction.
    pub fn is_subtraction(self) -> bool {
        matches!(self, LutKind::SubInPlace | LutKind::SubOutOfPlace)
    }
}

/// One pass of a lookup table: the masked search key over the carry/borrow column,
/// the `B` operand and the `A` operand, and the values written into the tagged rows.
///
/// For in-place tables the write targets are `(carry, B)`; for out-of-place tables
/// they are `(carry, R)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LutEntry {
    /// Search key bit for the carry/borrow column.
    pub key_carry: bool,
    /// Search key bit for the `B` operand column.
    pub key_b: bool,
    /// Search key bit for the `A` operand column.
    pub key_a: bool,
    /// Value written into the carry/borrow column of tagged rows.
    pub write_carry: bool,
    /// Value written into the second write column of tagged rows
    /// (`B` for in-place tables, the result column `R` for out-of-place tables).
    pub write_result: bool,
}

impl LutEntry {
    const fn new(key_carry: u8, key_b: u8, key_a: u8, write_carry: u8, write_result: u8) -> Self {
        LutEntry {
            key_carry: key_carry != 0,
            key_b: key_b != 0,
            key_a: key_a != 0,
            write_carry: write_carry != 0,
            write_result: write_result != 0,
        }
    }
}

/// A complete lookup table: the ordered list of non-"NC" passes for one 1-bit
/// operation (Table I of the paper).
///
/// Entries marked *NC* (no change) in the paper are omitted because they require no
/// search or write. The pass order matters for correctness: a pass that rewrites the
/// carry/borrow or `B` column must not turn a row into a pattern that a *later* pass
/// would falsely match. The orders encoded here follow the paper's run order, except
/// for [`LutKind::AddOutOfPlace`] where the published table marks the `Cr,B,A = 0,1,1`
/// row as *NC* even though its carry changes; we use the functionally correct
/// five-pass variant (keys `001, 010, 100, 111, 011`) at the same 10-cycle cost.
///
/// # Example
///
/// ```
/// use ap::{Lut, LutKind};
///
/// let lut = Lut::of(LutKind::AddInPlace);
/// assert_eq!(lut.passes().len(), 4);
/// assert_eq!(lut.cycles_per_bit(), 8);
/// assert_eq!(Lut::of(LutKind::SubOutOfPlace).cycles_per_bit(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lut {
    kind: LutKind,
    passes: Vec<LutEntry>,
}

/// In-place adder, Table I (left), rows in run order 1st..4th.
const ADD_IN_PLACE: [LutEntry; 4] = [
    LutEntry::new(0, 1, 1, 1, 0), // 1st: Cr,B,A = 011 -> Cr,B = 10
    LutEntry::new(0, 0, 1, 0, 1), // 2nd: 001 -> 01
    LutEntry::new(1, 0, 0, 0, 1), // 3rd: 100 -> 01
    LutEntry::new(1, 1, 0, 1, 0), // 4th: 110 -> 10
];

/// Out-of-place adder: five passes writing (Cr, R). See the [`Lut`] docs for the
/// deviation from the published table (erratum fix on row 011/110).
const ADD_OUT_OF_PLACE: [LutEntry; 5] = [
    LutEntry::new(0, 0, 1, 0, 1), // 001 -> Cr,R = 01
    LutEntry::new(0, 1, 0, 0, 1), // 010 -> 01
    LutEntry::new(1, 0, 0, 0, 1), // 100 -> 01
    LutEntry::new(1, 1, 1, 1, 1), // 111 -> 11 (must precede 011: that pass sets Cr)
    LutEntry::new(0, 1, 1, 1, 0), // 011 -> 10
];

/// In-place subtractor (`B ← B − A`), Table I (right), rows in run order 1st..4th.
const SUB_IN_PLACE: [LutEntry; 4] = [
    LutEntry::new(0, 0, 1, 1, 1), // 1st: Br,B,A = 001 -> Br,B = 11
    LutEntry::new(0, 1, 1, 0, 0), // 2nd: 011 -> 00
    LutEntry::new(1, 1, 0, 0, 0), // 3rd: 110 -> 00
    LutEntry::new(1, 0, 0, 1, 1), // 4th: 100 -> 11
];

/// Out-of-place subtractor (`R ← B − A`), Table I (right), rows in run order 1st..5th.
const SUB_OUT_OF_PLACE: [LutEntry; 5] = [
    LutEntry::new(0, 0, 1, 1, 1), // 1st: 001 -> Br,R = 11
    LutEntry::new(0, 1, 0, 0, 1), // 2nd: 010 -> 01
    LutEntry::new(1, 0, 0, 1, 1), // 3rd: 100 -> 11
    LutEntry::new(1, 1, 0, 0, 0), // 4th: 110 -> 00
    LutEntry::new(1, 1, 1, 1, 1), // 5th: 111 -> 11
];

impl Lut {
    /// Returns the lookup table for `kind`.
    pub fn of(kind: LutKind) -> Self {
        let passes = match kind {
            LutKind::AddInPlace => ADD_IN_PLACE.to_vec(),
            LutKind::AddOutOfPlace => ADD_OUT_OF_PLACE.to_vec(),
            LutKind::SubInPlace => SUB_IN_PLACE.to_vec(),
            LutKind::SubOutOfPlace => SUB_OUT_OF_PLACE.to_vec(),
        };
        Lut { kind, passes }
    }

    /// The operation this table implements.
    pub fn kind(&self) -> LutKind {
        self.kind
    }

    /// The ordered, non-NC passes of the table.
    pub fn passes(&self) -> &[LutEntry] {
        &self.passes
    }

    /// Number of AP cycles per processed bit: each pass is one search cycle plus one
    /// write cycle.
    pub fn cycles_per_bit(&self) -> u64 {
        self.passes.len() as u64 * 2
    }

    /// Passes that remain applicable when the `A` operand bit is known to be the
    /// constant `a_bit` (used for zero- or sign-extension beyond the operand width).
    /// The `A` column is then removed from the search key by the executor.
    pub fn passes_with_constant_a(&self, a_bit: bool) -> Vec<LutEntry> {
        self.passes
            .iter()
            .copied()
            .filter(|p| p.key_a == a_bit)
            .collect()
    }
}

/// Reference 1-bit full-adder used to validate the tables: returns `(sum, carry_out)`.
#[cfg(test)]
pub(crate) fn full_add(a: bool, b: bool, carry: bool) -> (bool, bool) {
    let sum = a ^ b ^ carry;
    let carry_out = (a & b) | (a & carry) | (b & carry);
    (sum, carry_out)
}

/// Reference 1-bit full-subtractor (`b - a - borrow`): returns `(difference, borrow_out)`.
#[cfg(test)]
pub(crate) fn full_sub(a: bool, b: bool, borrow: bool) -> (bool, bool) {
    let diff = b ^ a ^ borrow;
    let borrow_out = (!b & a) | (!b & borrow) | (a & borrow);
    (diff, borrow_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates the sequential application of a LUT's passes to a single row and
    /// returns the final (carry, result) pair, mirroring what the CAM does.
    fn apply(kind: LutKind, carry_in: bool, b_in: bool, a_in: bool) -> (bool, bool) {
        let lut = Lut::of(kind);
        let in_place = kind.is_in_place();
        // Row state: carry column, B column, A column, R column (out-of-place only).
        let mut carry = carry_in;
        let mut b = b_in;
        let a = a_in;
        let mut r = false;
        for pass in lut.passes() {
            if pass.key_carry == carry && pass.key_b == b && pass.key_a == a {
                carry = pass.write_carry;
                if in_place {
                    b = pass.write_result;
                } else {
                    r = pass.write_result;
                }
            }
        }
        if in_place {
            (carry, b)
        } else {
            (carry, r)
        }
    }

    #[test]
    fn pass_counts_match_paper_cycle_counts() {
        assert_eq!(Lut::of(LutKind::AddInPlace).cycles_per_bit(), 8);
        assert_eq!(Lut::of(LutKind::SubInPlace).cycles_per_bit(), 8);
        assert_eq!(Lut::of(LutKind::AddOutOfPlace).cycles_per_bit(), 10);
        assert_eq!(Lut::of(LutKind::SubOutOfPlace).cycles_per_bit(), 10);
    }

    #[test]
    fn in_place_adder_matches_full_adder_for_all_inputs() {
        for carry in [false, true] {
            for b in [false, true] {
                for a in [false, true] {
                    let (sum, cout) = full_add(a, b, carry);
                    let (got_carry, got_sum) = apply(LutKind::AddInPlace, carry, b, a);
                    assert_eq!((got_sum, got_carry), (sum, cout), "a={a} b={b} cin={carry}");
                }
            }
        }
    }

    #[test]
    fn out_of_place_adder_matches_full_adder_for_all_inputs() {
        for carry in [false, true] {
            for b in [false, true] {
                for a in [false, true] {
                    let (sum, cout) = full_add(a, b, carry);
                    let (got_carry, got_sum) = apply(LutKind::AddOutOfPlace, carry, b, a);
                    assert_eq!((got_sum, got_carry), (sum, cout), "a={a} b={b} cin={carry}");
                }
            }
        }
    }

    #[test]
    fn in_place_subtractor_matches_full_subtractor_for_all_inputs() {
        for borrow in [false, true] {
            for b in [false, true] {
                for a in [false, true] {
                    let (diff, bout) = full_sub(a, b, borrow);
                    let (got_borrow, got_diff) = apply(LutKind::SubInPlace, borrow, b, a);
                    assert_eq!(
                        (got_diff, got_borrow),
                        (diff, bout),
                        "a={a} b={b} bin={borrow}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_place_subtractor_matches_full_subtractor_for_all_inputs() {
        for borrow in [false, true] {
            for b in [false, true] {
                for a in [false, true] {
                    let (diff, bout) = full_sub(a, b, borrow);
                    let (got_borrow, got_diff) = apply(LutKind::SubOutOfPlace, borrow, b, a);
                    assert_eq!(
                        (got_diff, got_borrow),
                        (diff, bout),
                        "a={a} b={b} bin={borrow}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_a_filter_keeps_only_matching_passes() {
        let lut = Lut::of(LutKind::AddInPlace);
        let zero_passes = lut.passes_with_constant_a(false);
        assert!(zero_passes.iter().all(|p| !p.key_a));
        assert_eq!(zero_passes.len(), 2);
        let one_passes = lut.passes_with_constant_a(true);
        assert!(one_passes.iter().all(|p| p.key_a));
        assert_eq!(one_passes.len(), 2);
    }

    #[test]
    fn kind_predicates() {
        assert!(LutKind::AddInPlace.is_in_place());
        assert!(!LutKind::AddOutOfPlace.is_in_place());
        assert!(LutKind::SubOutOfPlace.is_subtraction());
        assert!(!LutKind::AddInPlace.is_subtraction());
    }
}
