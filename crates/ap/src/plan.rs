//! Compiled pass plans: instruction-specialized execution of [`ApProgram`]s.
//!
//! [`ApEngine::run`] interprets a program pass by pass: every invocation
//! re-derives the key/pattern list of each instruction, allocates search keys
//! and tag registers, and branches on [`ApInstruction`]/[`Operand`] shape
//! inside the hot loop. [`PlanCompiler`] removes that interpreter tax by
//! lowering a program **once** into a [`PassPlan`]:
//!
//! * every (column, domain) pair is pre-resolved to an absolute bit-plane
//!   base address,
//! * every bit of every instruction becomes one *fused group* executed by a
//!   kernel monomorphized per (LUT kind × operand addressing pattern) — the
//!   full search/write pass sequence of that bit runs as straight-line word
//!   operations with the LUT baked into the code via `dispatch_pass!`,
//! * adjacent all-rows zero writes (carry resets, destination clears) that
//!   share the same all-set key are merged into a single combined sweep by
//!   the fusion pass, and
//! * the per-column align walks and all data-independent [`cam::CamStats`]
//!   charges are folded into closed-form summaries booked in one call.
//!
//! The plan path is pinned bit-identical to the interpreter — same column
//! dumps, same tag vectors, same counters, same error messages. Programs
//! whose execution could fail (operand conflicts, out-of-range addresses,
//! duplicate destination columns) are compiled to a *fallback* plan that
//! simply reruns the interpreter, reproducing its exact error and
//! partial-application semantics.

use crate::{ApEngine, ApError, ApInstruction, ApProgram, CarrySlot, Operand, Result};
use cam::{BitPlaneArray, PlaneAccess};
use serde::{Deserialize, Serialize};

/// The array geometry a [`PassPlan`] is lowered for. Plans pre-resolve
/// absolute plane addresses, so a plan only runs on arrays of this exact
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanGeometry {
    /// Number of SIMD rows.
    pub rows: usize,
    /// Number of operand columns.
    pub cols: usize,
    /// Domains (storable bits) per cell.
    pub domains: usize,
}

impl PlanGeometry {
    /// The geometry of an existing array.
    pub fn of(array: &BitPlaneArray) -> Self {
        PlanGeometry {
            rows: array.rows(),
            cols: array.cols(),
            domains: array.domains(),
        }
    }
}

/// Lowering statistics of one compiled plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Search/write passes the interpreter would issue for this program.
    pub passes_before_fusion: u64,
    /// Fused kernel sweeps the compiled plan issues instead.
    pub passes_after_fusion: u64,
    /// Whether the plan fell back to the reference interpreter (programs
    /// whose execution could fail are not specialized).
    pub fallback: bool,
}

/// Match contribution of one key bit: the plane word for a `1` key, its
/// complement for a `0` key.
macro_rules! key_word {
    ($reg:expr, 1) => {
        $reg
    };
    ($reg:expr, 0) => {
        !$reg
    };
}

/// Applies one write bit to the matched rows `$m` of register `$reg`.
macro_rules! write_word {
    ($reg:ident, $m:expr, 1) => {
        $reg |= $m
    };
    ($reg:ident, $m:expr, 0) => {
        $reg &= !$m
    };
}

/// Monomorphizes one in-place LUT kernel from its filtered pass table
/// (`key_carry, key_acc [, key_a] => write_carry, write_acc`). One call
/// sweeps every pass of one accumulator bit over all rows, updating the
/// carry/accumulator registers between passes exactly like the interpreter's
/// sequential search/write pairs, and stores each pass's match mask into
/// `scratch` for the data-dependent written-bits accounting.
macro_rules! in_place_kernel {
    ($name:ident, with_a, $(($kc:tt, $kb:tt, $ka:tt => $wc:tt, $wb:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            acc: usize,
            a: usize,
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let mut br = access.word(acc, w);
                let ar = access.word(a, w);
                let mut pass = 0usize;
                $(
                    let m = valid
                        & key_word!(cr, $kc)
                        & key_word!(br, $kb)
                        & key_word!(ar, $ka);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    write_word!(br, m, $wb);
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
                access.set_word(acc, w, br);
            }
            [$(($kc)),+].len()
        }
    };
    ($name:ident, no_a, $(($kc:tt, $kb:tt => $wc:tt, $wb:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            acc: usize,
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let mut br = access.word(acc, w);
                let mut pass = 0usize;
                $(
                    let m = valid & key_word!(cr, $kc) & key_word!(br, $kb);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    write_word!(br, m, $wb);
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
                access.set_word(acc, w, br);
            }
            [$(($kc)),+].len()
        }
    };
}

/// Monomorphizes one out-of-place LUT kernel from its filtered pass table
/// (`key_carry [, key_b] [, key_a] => write_carry, write_result`), one
/// variant per operand-presence regime (zero/sign extension drops absent
/// operand bits from the keys). The carry register is updated between
/// passes; the sources are read-only and the result bit is written to every
/// destination plane.
macro_rules! out_of_place_kernel {
    ($name:ident, ab, $(($kc:tt, $kb:tt, $ka:tt => $wc:tt, $wr:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            b: usize,
            a: usize,
            dests: &[usize],
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let br = access.word(b, w);
                let ar = access.word(a, w);
                let mut pass = 0usize;
                $(
                    let m = valid
                        & key_word!(cr, $kc)
                        & key_word!(br, $kb)
                        & key_word!(ar, $ka);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    for &dest in dests {
                        let cur = access.word(dest, w);
                        let mut updated = cur;
                        write_word!(updated, m, $wr);
                        access.set_word(dest, w, updated);
                    }
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
            }
            [$(($kc)),+].len()
        }
    };
    ($name:ident, a_only, $(($kc:tt, $ka:tt => $wc:tt, $wr:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            a: usize,
            dests: &[usize],
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let ar = access.word(a, w);
                let mut pass = 0usize;
                $(
                    let m = valid & key_word!(cr, $kc) & key_word!(ar, $ka);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    for &dest in dests {
                        let cur = access.word(dest, w);
                        let mut updated = cur;
                        write_word!(updated, m, $wr);
                        access.set_word(dest, w, updated);
                    }
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
            }
            [$(($kc)),+].len()
        }
    };
    ($name:ident, b_only, $(($kc:tt, $kb:tt => $wc:tt, $wr:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            b: usize,
            dests: &[usize],
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let br = access.word(b, w);
                let mut pass = 0usize;
                $(
                    let m = valid & key_word!(cr, $kc) & key_word!(br, $kb);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    for &dest in dests {
                        let cur = access.word(dest, w);
                        let mut updated = cur;
                        write_word!(updated, m, $wr);
                        access.set_word(dest, w, updated);
                    }
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
            }
            [$(($kc)),+].len()
        }
    };
    ($name:ident, neither, $(($kc:tt => $wc:tt, $wr:tt)),+ $(,)?) => {
        fn $name(
            access: &mut PlaneAccess<'_>,
            carry: usize,
            dests: &[usize],
            scratch: &mut [u64],
        ) -> usize {
            let words = access.words();
            for w in 0..words {
                let valid = access.valid_mask(w);
                let mut cr = access.word(carry, w);
                let mut pass = 0usize;
                $(
                    let m = valid & key_word!(cr, $kc);
                    scratch[pass * words + w] = m;
                    write_word!(cr, m, $wc);
                    for &dest in dests {
                        let cur = access.word(dest, w);
                        let mut updated = cur;
                        write_word!(updated, m, $wr);
                        access.set_word(dest, w, updated);
                    }
                    pass += 1;
                )+
                let _ = pass;
                access.set_word(carry, w, cr);
            }
            [$(($kc)),+].len()
        }
    };
}

// The filtered pass tables below are the Table I LUTs of `crate::lut`
// specialized per operand-presence regime, rows kept in table order exactly
// as the interpreter's key filters produce them.
in_place_kernel!(add_in_place_full, with_a,
    (0, 1, 1 => 1, 0),
    (0, 0, 1 => 0, 1),
    (1, 0, 0 => 0, 1),
    (1, 1, 0 => 1, 0),
);
in_place_kernel!(add_in_place_zero_a, no_a,
    (1, 0 => 0, 1),
    (1, 1 => 1, 0),
);
in_place_kernel!(sub_in_place_full, with_a,
    (0, 0, 1 => 1, 1),
    (0, 1, 1 => 0, 0),
    (1, 1, 0 => 0, 0),
    (1, 0, 0 => 1, 1),
);
in_place_kernel!(sub_in_place_zero_a, no_a,
    (1, 1 => 0, 0),
    (1, 0 => 1, 1),
);
out_of_place_kernel!(add_oop_ab, ab,
    (0, 0, 1 => 0, 1),
    (0, 1, 0 => 0, 1),
    (1, 0, 0 => 0, 1),
    (1, 1, 1 => 1, 1),
    (0, 1, 1 => 1, 0),
);
out_of_place_kernel!(add_oop_a, a_only, (0, 1 => 0, 1), (1, 0 => 0, 1));
out_of_place_kernel!(add_oop_b, b_only, (0, 1 => 0, 1), (1, 0 => 0, 1));
out_of_place_kernel!(add_oop_neither, neither, (1 => 0, 1));
out_of_place_kernel!(sub_oop_ab, ab,
    (0, 0, 1 => 1, 1),
    (0, 1, 0 => 0, 1),
    (1, 0, 0 => 1, 1),
    (1, 1, 0 => 0, 0),
    (1, 1, 1 => 1, 1),
);
out_of_place_kernel!(sub_oop_a, a_only, (0, 1 => 1, 1), (1, 0 => 1, 1));
out_of_place_kernel!(sub_oop_b, b_only, (0, 1 => 0, 1), (1, 0 => 1, 1), (1, 1 => 0, 0));
out_of_place_kernel!(sub_oop_neither, neither, (1 => 1, 1));

/// Fused copy sweep: both passes of one copied bit (`src == 0` → write 0,
/// `src == 1` → write 1) in one walk over the words.
fn copy_kernel(
    access: &mut PlaneAccess<'_>,
    src: usize,
    dests: &[usize],
    scratch: &mut [u64],
) -> usize {
    let words = access.words();
    for w in 0..words {
        let valid = access.valid_mask(w);
        let s = access.word(src, w);
        let m_zero = valid & !s;
        let m_one = valid & s;
        scratch[w] = m_zero;
        scratch[words + w] = m_one;
        for &dest in dests {
            let cur = access.word(dest, w);
            access.set_word(dest, w, (cur & !m_zero) | m_one);
        }
    }
    2
}

/// One monomorphized kernel per (LUT kind × operand addressing pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelId {
    AddInPlaceFull,
    AddInPlaceZeroA,
    SubInPlaceFull,
    SubInPlaceZeroA,
    AddOopAb,
    AddOopA,
    AddOopB,
    AddOopNeither,
    SubOopAb,
    SubOopA,
    SubOopB,
    SubOopNeither,
}

/// Dispatches one fused LUT group to its monomorphized kernel, returning the
/// number of passes swept.
macro_rules! dispatch_pass {
    ($group:expr, $access:expr, $scratch:expr) => {
        match $group.kernel {
            KernelId::AddInPlaceFull => {
                add_in_place_full($access, $group.carry, $group.b, $group.a, $scratch)
            }
            KernelId::AddInPlaceZeroA => {
                add_in_place_zero_a($access, $group.carry, $group.b, $scratch)
            }
            KernelId::SubInPlaceFull => {
                sub_in_place_full($access, $group.carry, $group.b, $group.a, $scratch)
            }
            KernelId::SubInPlaceZeroA => {
                sub_in_place_zero_a($access, $group.carry, $group.b, $scratch)
            }
            KernelId::AddOopAb => add_oop_ab(
                $access,
                $group.carry,
                $group.b,
                $group.a,
                &$group.dests,
                $scratch,
            ),
            KernelId::AddOopA => {
                add_oop_a($access, $group.carry, $group.a, &$group.dests, $scratch)
            }
            KernelId::AddOopB => {
                add_oop_b($access, $group.carry, $group.b, &$group.dests, $scratch)
            }
            KernelId::AddOopNeither => {
                add_oop_neither($access, $group.carry, &$group.dests, $scratch)
            }
            KernelId::SubOopAb => sub_oop_ab(
                $access,
                $group.carry,
                $group.b,
                $group.a,
                &$group.dests,
                $scratch,
            ),
            KernelId::SubOopA => {
                sub_oop_a($access, $group.carry, $group.a, &$group.dests, $scratch)
            }
            KernelId::SubOopB => {
                sub_oop_b($access, $group.carry, $group.b, &$group.dests, $scratch)
            }
            KernelId::SubOopNeither => {
                sub_oop_neither($access, $group.carry, &$group.dests, $scratch)
            }
        }
    };
}

/// One fused LUT sweep: every pass of one processed bit of a binary
/// instruction, with all operands pre-resolved to absolute plane bases.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LutGroup {
    kernel: KernelId,
    /// Carry/borrow plane base.
    carry: usize,
    /// Accumulator (in place) or `b` source (out of place) plane base.
    b: usize,
    /// `a` source plane base (unused by the `ZeroA`/`B`/`Neither` kernels).
    a: usize,
    /// Destination plane bases (empty for in-place kernels).
    dests: Vec<usize>,
    /// Write-pattern bits per pass (2 in place, 1 + destinations out of
    /// place) — the per-pass multiplier of the data-dependent written bits.
    pattern_bits: u64,
}

/// One pre-resolved plan operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PlanOp {
    /// Fused LUT sweep of one bit.
    Lut(LutGroup),
    /// Fused copy sweep of one bit.
    Copy { src: usize, dests: Vec<usize> },
    /// All-rows zero write into whole planes (clears, carry resets and
    /// zero-extension bits). Adjacent zero writes are merged by the fusion
    /// pass, sharing one combined sweep.
    Zero { planes: Vec<usize> },
}

/// Closed-form summary of one column's align subsequence: the interpreter
/// aligns the column at `first` first, pays `intra` more shifts walking the
/// program, and leaves the port at `last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColumnAlign {
    col: usize,
    first: usize,
    intra: u64,
    last: usize,
}

/// The specialized execution form: pre-resolved ops plus the closed-form
/// accounting aggregates of the whole program.
#[derive(Debug, Clone, PartialEq)]
struct FastPlan {
    aligns: Vec<ColumnAlign>,
    ops: Vec<PlanOp>,
    /// Data-independent accounting: search cycles, searched key bits per
    /// row, write cycles, and all-rows-tagged pattern bits per row.
    search_cycles: u64,
    key_bits: u64,
    write_cycles: u64,
    allset_pattern_bits: u64,
    /// Largest pass count of any group (scratch sizing).
    max_passes: usize,
    words: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum PlanMode {
    Fast(FastPlan),
    Fallback(ApProgram),
}

/// A compiled execution plan for one [`ApProgram`] on one array geometry.
///
/// Built by [`PlanCompiler::compile`] (or [`ApEngine::compile_plan`]) and
/// executed by [`ApEngine::run_plan`]; bit-identical to [`ApEngine::run`] in
/// data, [`cam::CamStats`] and errors.
#[derive(Debug, Clone, PartialEq)]
pub struct PassPlan {
    geometry: PlanGeometry,
    stats: PlanStats,
    mode: PlanMode,
}

impl PassPlan {
    /// The geometry the plan was lowered for.
    pub fn geometry(&self) -> PlanGeometry {
        self.geometry
    }

    /// Lowering statistics (passes before/after fusion, fallback flag).
    pub fn stats(&self) -> PlanStats {
        self.stats
    }

    /// Whether the plan executes through the reference interpreter instead
    /// of specialized kernels (programs whose execution could fail).
    pub fn is_fallback(&self) -> bool {
        self.stats.fallback
    }
}

/// Lowers [`ApProgram`]s into [`PassPlan`]s for one array geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCompiler {
    geometry: PlanGeometry,
}

impl PlanCompiler {
    /// Creates a compiler targeting `geometry`.
    pub fn new(geometry: PlanGeometry) -> Self {
        PlanCompiler { geometry }
    }

    /// Creates a compiler targeting the geometry of `array`.
    pub fn for_array(array: &BitPlaneArray) -> Self {
        Self::new(PlanGeometry::of(array))
    }

    /// Lowers `program` into a plan. Programs that validate cleanly against
    /// the target geometry become specialized fast plans; any program whose
    /// execution could fail (or that uses duplicate destination columns,
    /// whose deduplicated write patterns the kernels do not model) becomes a
    /// fallback plan that reruns the interpreter verbatim.
    pub fn compile(&self, program: &ApProgram) -> PassPlan {
        let mut lowering = Lowering::new(self.geometry);
        match lowering.lower(program) {
            Some(()) => {
                let before = lowering.passes_before;
                let ops = fuse(std::mem::take(&mut lowering.ops));
                PassPlan {
                    geometry: self.geometry,
                    stats: PlanStats {
                        passes_before_fusion: before,
                        passes_after_fusion: ops.len() as u64,
                        fallback: false,
                    },
                    mode: PlanMode::Fast(FastPlan {
                        aligns: lowering.aligns(),
                        ops,
                        search_cycles: lowering.search_cycles,
                        key_bits: lowering.key_bits,
                        write_cycles: lowering.write_cycles,
                        allset_pattern_bits: lowering.allset_pattern_bits,
                        max_passes: lowering.max_passes,
                        words: BitPlaneArray::words_for_rows(self.geometry.rows),
                    }),
                }
            }
            None => PassPlan {
                geometry: self.geometry,
                stats: PlanStats {
                    passes_before_fusion: 0,
                    passes_after_fusion: 0,
                    fallback: true,
                },
                mode: PlanMode::Fallback(program.clone()),
            },
        }
    }
}

/// Merges adjacent ops sharing the same key into single combined sweeps:
/// consecutive all-rows zero writes (carry reset followed by destination
/// clears, clear followed by clear, zero-extension runs) collapse into one
/// multi-plane sweep. Event accounting is unaffected — the merged write
/// cycles were already booked at lowering time.
fn fuse(ops: Vec<PlanOp>) -> Vec<PlanOp> {
    let mut fused: Vec<PlanOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if let PlanOp::Zero { planes } = &op {
            if let Some(PlanOp::Zero { planes: prev }) = fused.last_mut() {
                prev.extend_from_slice(planes);
                continue;
            }
        }
        fused.push(op);
    }
    fused
}

/// Per-column align-walk summary being accumulated during lowering.
#[derive(Debug, Clone, Copy)]
struct AlignSummary {
    first: usize,
    intra: u64,
    last: usize,
}

/// Minimal circular distance between two domains on a `domains`-deep track
/// (mirrors the shift accounting of the CAM model).
fn circular_distance(from: usize, to: usize, domains: usize) -> u64 {
    let folded = from.abs_diff(to) % domains;
    folded.min(domains - folded) as u64
}

/// One lowering walk over a program. Every method returns `None` as soon as
/// the program could fail at execution time, aborting to the fallback plan.
struct Lowering {
    geometry: PlanGeometry,
    words: usize,
    align_state: Vec<Option<AlignSummary>>,
    ops: Vec<PlanOp>,
    search_cycles: u64,
    key_bits: u64,
    write_cycles: u64,
    allset_pattern_bits: u64,
    passes_before: u64,
    max_passes: usize,
}

impl Lowering {
    fn new(geometry: PlanGeometry) -> Self {
        Lowering {
            geometry,
            words: BitPlaneArray::words_for_rows(geometry.rows),
            align_state: vec![None; geometry.cols],
            ops: Vec::new(),
            search_cycles: 0,
            key_bits: 0,
            write_cycles: 0,
            allset_pattern_bits: 0,
            passes_before: 0,
            max_passes: 0,
        }
    }

    fn aligns(&self) -> Vec<ColumnAlign> {
        self.align_state
            .iter()
            .enumerate()
            .filter_map(|(col, state)| {
                state.map(|s| ColumnAlign {
                    col,
                    first: s.first,
                    intra: s.intra,
                    last: s.last,
                })
            })
            .collect()
    }

    /// Replays one `align_column` call into the column's summary.
    fn align(&mut self, col: usize, domain: usize) -> Option<()> {
        if col >= self.geometry.cols || domain >= self.geometry.domains {
            return None;
        }
        match &mut self.align_state[col] {
            Some(state) => {
                state.intra += circular_distance(state.last, domain, self.geometry.domains);
                state.last = domain;
            }
            state @ None => {
                *state = Some(AlignSummary {
                    first: domain,
                    intra: 0,
                    last: domain,
                });
            }
        }
        Some(())
    }

    fn plane(&self, col: usize, domain: usize) -> usize {
        (col * self.geometry.domains + domain) * self.words
    }

    fn validate_operand(op: &Operand) -> Option<()> {
        (op.width >= 1 && op.width <= 63).then_some(())
    }

    /// Books one all-rows zero write (one write cycle, one pattern bit per
    /// plane — the interpreter issues one single-column write per plane).
    fn zero(&mut self, planes: Vec<usize>) {
        self.write_cycles += planes.len() as u64;
        self.allset_pattern_bits += planes.len() as u64;
        self.passes_before += planes.len() as u64;
        self.ops.push(PlanOp::Zero { planes });
    }

    /// Books one fused LUT group of `passes` passes with `key_len` key bits
    /// and `group.pattern_bits` pattern bits each.
    fn lut(&mut self, group: LutGroup, passes: u64, key_len: u64) {
        self.search_cycles += passes;
        self.key_bits += passes * key_len;
        self.write_cycles += passes;
        self.passes_before += passes;
        self.max_passes = self.max_passes.max(passes as usize);
        self.ops.push(PlanOp::Lut(group));
    }

    fn clear_carry(&mut self, carry: CarrySlot) -> Option<()> {
        self.align(carry.col, carry.domain)?;
        let plane = self.plane(carry.col, carry.domain);
        self.zero(vec![plane]);
        Some(())
    }

    fn clear(&mut self, dst: &Operand) -> Option<()> {
        Self::validate_operand(dst)?;
        for bit in 0..dst.width as usize {
            self.align(dst.col, dst.base + bit)?;
            let plane = self.plane(dst.col, dst.base + bit);
            self.zero(vec![plane]);
        }
        Some(())
    }

    fn lower(&mut self, program: &ApProgram) -> Option<()> {
        for instruction in program.iter() {
            match instruction {
                ApInstruction::AddInPlace { a, acc, carry } => {
                    self.lower_in_place(a, acc, *carry, true)?;
                }
                ApInstruction::SubInPlace { a, acc, carry } => {
                    self.lower_in_place(a, acc, *carry, false)?;
                }
                ApInstruction::AddOutOfPlace { a, b, dests, carry } => {
                    self.lower_out_of_place(a, b, dests, *carry, true)?;
                }
                ApInstruction::SubOutOfPlace { a, b, dests, carry } => {
                    self.lower_out_of_place(a, b, dests, *carry, false)?;
                }
                ApInstruction::Copy { src, dests } => self.lower_copy(src, dests)?,
                ApInstruction::Clear { dst } => self.clear(dst)?,
            }
        }
        Some(())
    }

    fn lower_in_place(
        &mut self,
        a: &Operand,
        acc: &Operand,
        carry: CarrySlot,
        is_add: bool,
    ) -> Option<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(acc)?;
        if a.col == acc.col || carry.col == a.col || carry.col == acc.col {
            return None;
        }
        self.clear_carry(carry)?;
        let carry_plane = self.plane(carry.col, carry.domain);
        for bit in 0..acc.width as usize {
            self.align(acc.col, acc.base + bit)?;
            let a_domain = a.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.align(a.col, domain)?;
            }
            self.align(carry.col, carry.domain)?;
            let (kernel, passes, key_len) = match (is_add, a_domain.is_some()) {
                (true, true) => (KernelId::AddInPlaceFull, 4, 3),
                (true, false) => (KernelId::AddInPlaceZeroA, 2, 2),
                (false, true) => (KernelId::SubInPlaceFull, 4, 3),
                (false, false) => (KernelId::SubInPlaceZeroA, 2, 2),
            };
            let a_plane = a_domain.map_or(0, |domain| self.plane(a.col, domain));
            self.lut(
                LutGroup {
                    kernel,
                    carry: carry_plane,
                    b: self.plane(acc.col, acc.base + bit),
                    a: a_plane,
                    dests: Vec::new(),
                    pattern_bits: 2,
                },
                passes,
                key_len,
            );
        }
        Some(())
    }

    fn lower_out_of_place(
        &mut self,
        a: &Operand,
        b: &Operand,
        dests: &[Operand],
        carry: CarrySlot,
        is_add: bool,
    ) -> Option<()> {
        Self::validate_operand(a)?;
        Self::validate_operand(b)?;
        let first = dests.first()?;
        for (index, dest) in dests.iter().enumerate() {
            Self::validate_operand(dest)?;
            if dest.width != first.width
                || dest.col == a.col
                || dest.col == b.col
                || dest.col == carry.col
            {
                return None;
            }
            // Duplicate destination columns make the interpreter dedupe the
            // write pattern (only the last-aligned plane is written); the
            // kernels model distinct planes only, so fall back.
            if dests[..index].iter().any(|other| other.col == dest.col) {
                return None;
            }
        }
        if a.col == b.col || carry.col == a.col || carry.col == b.col {
            return None;
        }
        self.clear_carry(carry)?;
        for dest in dests {
            self.clear(dest)?;
        }
        let carry_plane = self.plane(carry.col, carry.domain);
        let width = first.width as usize;
        for bit in 0..width {
            let a_domain = a.domain_for_bit(bit);
            let b_domain = b.domain_for_bit(bit);
            if let Some(domain) = a_domain {
                self.align(a.col, domain)?;
            }
            if let Some(domain) = b_domain {
                self.align(b.col, domain)?;
            }
            self.align(carry.col, carry.domain)?;
            for dest in dests {
                self.align(dest.col, dest.base + bit)?;
            }
            let (kernel, passes, key_len) = match (is_add, a_domain.is_some(), b_domain.is_some()) {
                (true, true, true) => (KernelId::AddOopAb, 5, 3),
                (true, true, false) => (KernelId::AddOopA, 2, 2),
                (true, false, true) => (KernelId::AddOopB, 2, 2),
                (true, false, false) => (KernelId::AddOopNeither, 1, 1),
                (false, true, true) => (KernelId::SubOopAb, 5, 3),
                (false, true, false) => (KernelId::SubOopA, 2, 2),
                (false, false, true) => (KernelId::SubOopB, 3, 2),
                (false, false, false) => (KernelId::SubOopNeither, 1, 1),
            };
            let a_plane = a_domain.map_or(0, |domain| self.plane(a.col, domain));
            let b_plane = b_domain.map_or(0, |domain| self.plane(b.col, domain));
            let dest_planes: Vec<usize> = dests
                .iter()
                .map(|dest| self.plane(dest.col, dest.base + bit))
                .collect();
            self.lut(
                LutGroup {
                    kernel,
                    carry: carry_plane,
                    b: b_plane,
                    a: a_plane,
                    dests: dest_planes,
                    pattern_bits: 1 + dests.len() as u64,
                },
                passes,
                key_len,
            );
        }
        Some(())
    }

    fn lower_copy(&mut self, src: &Operand, dests: &[Operand]) -> Option<()> {
        Self::validate_operand(src)?;
        let first = dests.first()?;
        for (index, dest) in dests.iter().enumerate() {
            Self::validate_operand(dest)?;
            if dest.width != first.width || dest.col == src.col {
                return None;
            }
            if dests[..index].iter().any(|other| other.col == dest.col) {
                return None;
            }
        }
        let width = first.width as usize;
        for bit in 0..width {
            for dest in dests {
                self.align(dest.col, dest.base + bit)?;
            }
            let dest_planes: Vec<usize> = dests
                .iter()
                .map(|dest| self.plane(dest.col, dest.base + bit))
                .collect();
            match src.domain_for_bit(bit) {
                Some(domain) => {
                    self.align(src.col, domain)?;
                    // Two single-key passes (src == 0, src == 1), fused into
                    // one sweep.
                    self.search_cycles += 2;
                    self.key_bits += 2;
                    self.write_cycles += 2;
                    self.passes_before += 2;
                    self.max_passes = self.max_passes.max(2);
                    self.ops.push(PlanOp::Copy {
                        src: self.plane(src.col, domain),
                        dests: dest_planes,
                    });
                }
                None => self.zero(dest_planes),
            }
        }
        Some(())
    }
}

impl PassPlan {
    /// Executes a fast plan over `array` (geometry already checked).
    fn run_fast(fast: &FastPlan, array: &mut BitPlaneArray) -> Result<()> {
        for align in &fast.aligns {
            array.bulk_align(align.col, align.first, align.intra, align.last)?;
        }
        array.bulk_pass_events(
            fast.search_cycles,
            fast.key_bits,
            fast.write_cycles,
            fast.allset_pattern_bits,
        );
        let words = fast.words;
        let mut scratch = vec![0u64; fast.max_passes.max(1) * words];
        for op in &fast.ops {
            match op {
                PlanOp::Zero { planes } => {
                    let mut access = array.plane_access();
                    for &plane in planes {
                        for w in 0..words {
                            let cleared = access.word(plane, w) & !access.valid_mask(w);
                            access.set_word(plane, w, cleared);
                        }
                    }
                    // Costs were booked in bulk up front; the trace recorder's
                    // pass log still needs the interpreter's per-plane all-set
                    // write entries (no-op unless logging is enabled).
                    array.log_allset_writes(planes.len() as u64);
                }
                PlanOp::Copy { src, dests } => {
                    let passes = copy_kernel(&mut array.plane_access(), *src, dests, &mut scratch);
                    for pass in 0..passes {
                        array.bulk_tagged_bits(
                            &scratch[pass * words..(pass + 1) * words],
                            dests.len() as u64,
                        );
                    }
                }
                PlanOp::Lut(group) => {
                    let passes = dispatch_pass!(group, &mut array.plane_access(), &mut scratch);
                    for pass in 0..passes {
                        array.bulk_tagged_bits(
                            &scratch[pass * words..(pass + 1) * words],
                            group.pattern_bits,
                        );
                    }
                }
            }
        }
        Ok(())
    }
}

impl ApEngine {
    /// Lowers `program` into a [`PassPlan`] specialized for this engine's
    /// array geometry. The plan can be cached and re-executed any number of
    /// times via [`run_plan`](Self::run_plan), paying the interpreter's
    /// per-run lowering cost exactly once.
    pub fn compile_plan(&self, program: &ApProgram) -> PassPlan {
        PlanCompiler::for_array(self.array()).compile(program)
    }

    /// Executes a compiled plan — bit-identical to [`run`](Self::run) of the
    /// program the plan was lowered from: same data, same
    /// [`cam::CamStats`] (aggregate and per-segment), same errors.
    ///
    /// When [`telemetry`] recording is on, each run books the plan's
    /// kernel-dispatch and pass-fusion counters (`ap.plan.runs`,
    /// `ap.kernel.dispatches`, `ap.fusion.passes_saved`,
    /// `ap.plan.fallback_runs`) — aggregated deltas once per run, never per
    /// pass, so the enabled cost stays off the inner loop. With recording
    /// off the only cost over [`run_plan_raw`](Self::run_plan_raw) is one
    /// relaxed atomic load (pinned < 3% by `benches/telemetry.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`ApError::PlanMismatch`] when the plan was compiled for a
    /// different array geometry; fallback plans return exactly the
    /// interpreter's errors.
    pub fn run_plan(&mut self, plan: &PassPlan) -> Result<()> {
        if telemetry::enabled() {
            let stats = plan.stats();
            telemetry::count("ap.plan.runs", 1);
            telemetry::count("ap.plan.fallback_runs", u64::from(stats.fallback));
            telemetry::count("ap.kernel.dispatches", stats.passes_after_fusion);
            telemetry::count(
                "ap.fusion.passes_saved",
                stats
                    .passes_before_fusion
                    .saturating_sub(stats.passes_after_fusion),
            );
        }
        self.run_plan_raw(plan)
    }

    /// [`run_plan`](Self::run_plan) without the telemetry hook — the
    /// uninstrumented twin the overhead bench (`benches/telemetry.rs`)
    /// measures the instrumented entry point against.
    ///
    /// # Errors
    ///
    /// Exactly those of [`run_plan`](Self::run_plan).
    pub fn run_plan_raw(&mut self, plan: &PassPlan) -> Result<()> {
        let geometry = plan.geometry();
        let array = self.array();
        if geometry.rows != array.rows()
            || geometry.cols != array.cols()
            || geometry.domains != array.domains()
        {
            return Err(ApError::PlanMismatch {
                plan_rows: geometry.rows,
                plan_cols: geometry.cols,
                plan_domains: geometry.domains,
                rows: array.rows(),
                cols: array.cols(),
                domains: array.domains(),
            });
        }
        match &plan.mode {
            PlanMode::Fallback(program) => self.run(program),
            PlanMode::Fast(fast) => PassPlan::run_fast(fast, self.array_mut()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam::CamTechnology;

    fn engine(rows: usize, cols: usize, domains: usize) -> ApEngine {
        ApEngine::new(
            BitPlaneArray::new(rows, cols, domains, CamTechnology::default()).expect("geometry"),
        )
    }

    fn sample_program() -> ApProgram {
        let a = Operand::new(0, 0, 4, false);
        let b = Operand::new(1, 0, 4, true);
        let acc = Operand::new(2, 0, 8, true);
        let tmp = Operand::new(3, 0, 6, true);
        ApProgram::from_instructions(vec![
            ApInstruction::AddOutOfPlace {
                a,
                b,
                dests: vec![tmp],
                carry: CarrySlot::new(5, 0),
            },
            ApInstruction::AddInPlace {
                a: tmp,
                acc,
                carry: CarrySlot::new(5, 0),
            },
            ApInstruction::SubInPlace {
                a: b,
                acc,
                carry: CarrySlot::new(5, 1),
            },
            ApInstruction::Copy {
                src: acc,
                dests: vec![Operand::new(4, 0, 8, true)],
            },
            ApInstruction::Clear { dst: tmp },
        ])
    }

    fn staged_pair(rows: usize) -> (ApEngine, ApEngine) {
        let mut reference = engine(rows, 6, 16);
        let a_vals: Vec<i64> = (0..rows as i64).map(|i| i % 16).collect();
        let b_vals: Vec<i64> = (0..rows as i64).map(|i| (i * 3) % 16 - 8).collect();
        let acc_vals: Vec<i64> = (0..rows as i64).map(|i| (i * 7) % 200 - 100).collect();
        reference
            .load_column(&Operand::new(0, 0, 4, false), &a_vals)
            .expect("load");
        reference
            .load_column(&Operand::new(1, 0, 4, true), &b_vals)
            .expect("load");
        reference
            .load_column(&Operand::new(2, 0, 8, true), &acc_vals)
            .expect("load");
        let planned = reference.clone();
        (reference, planned)
    }

    #[test]
    fn fast_plan_matches_interpreter_data_and_stats() {
        for rows in [1usize, 63, 64, 65, 130] {
            let (mut reference, mut planned) = staged_pair(rows);
            let program = sample_program();
            let plan = planned.compile_plan(&program);
            assert!(!plan.is_fallback(), "sample program must specialize");
            reference.run(&program).expect("interpreter");
            planned.run_plan(&plan).expect("plan");
            assert_eq!(planned.stats(), reference.stats(), "{rows} rows");
            for col in 0..6 {
                let expected = reference
                    .array_mut()
                    .read_column_values(col, 0, 16, false)
                    .expect("read");
                let actual = planned
                    .array_mut()
                    .read_column_values(col, 0, 16, false)
                    .expect("read");
                assert_eq!(actual, expected, "column {col} diverged at {rows} rows");
            }
        }
    }

    #[test]
    fn segment_tracking_matches_interpreter() {
        let rows = 96;
        let (mut reference, mut planned) = staged_pair(rows);
        reference.array_mut().track_segments(32).expect("segments");
        planned.array_mut().track_segments(32).expect("segments");
        let program = sample_program();
        let plan = planned.compile_plan(&program);
        reference.run(&program).expect("interpreter");
        planned.run_plan(&plan).expect("plan");
        assert_eq!(
            planned.array().segment_stats(),
            reference.array().segment_stats()
        );
    }

    #[test]
    fn fusion_merges_adjacent_zero_sweeps() {
        let program = ApProgram::from_instructions(vec![
            ApInstruction::Clear {
                dst: Operand::new(0, 0, 4, false),
            },
            ApInstruction::Clear {
                dst: Operand::new(1, 0, 4, false),
            },
        ]);
        let compiler = PlanCompiler::new(PlanGeometry {
            rows: 64,
            cols: 4,
            domains: 8,
        });
        let plan = compiler.compile(&program);
        let stats = plan.stats();
        assert_eq!(stats.passes_before_fusion, 8);
        assert_eq!(stats.passes_after_fusion, 1, "all clears fuse to one sweep");
    }

    #[test]
    fn invalid_programs_fall_back_with_identical_errors() {
        let conflicting = ApProgram::from_instructions(vec![ApInstruction::AddInPlace {
            a: Operand::new(0, 0, 4, false),
            acc: Operand::new(0, 4, 4, true),
            carry: CarrySlot::new(1, 0),
        }]);
        let out_of_range = ApProgram::from_instructions(vec![ApInstruction::Clear {
            dst: Operand::new(0, 14, 4, false),
        }]);
        let duplicate_dests = ApProgram::from_instructions(vec![ApInstruction::Copy {
            src: Operand::new(0, 0, 4, false),
            dests: vec![Operand::new(1, 0, 4, false), Operand::new(1, 4, 4, false)],
        }]);
        for program in [&conflicting, &out_of_range, &duplicate_dests] {
            let mut reference = engine(8, 4, 16);
            let mut planned = engine(8, 4, 16);
            let plan = planned.compile_plan(program);
            assert!(plan.is_fallback());
            let expected = reference.run(program);
            let actual = planned.run_plan(&plan);
            match (expected, actual) {
                (Ok(()), Ok(())) => {}
                (Err(e), Err(a)) => assert_eq!(format!("{a}"), format!("{e}")),
                other => panic!("divergent outcomes: {other:?}"),
            }
            assert_eq!(planned.stats(), reference.stats());
        }
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let planned = engine(8, 4, 16);
        let plan = planned.compile_plan(&sample_program());
        let mut other = engine(16, 4, 16);
        let err = other.run_plan(&plan).expect_err("mismatch must fail");
        assert!(matches!(err, ApError::PlanMismatch { .. }));
    }
}
