use crate::{AccessStats, Nanowire, Result, RtmError};

/// A domain-wall block cluster (DBC): a group of nanowires shifted in lockstep.
///
/// Grouping tracks into DBCs is how racetrack memories expose word-level parallelism:
/// one shift operation moves the domain walls of every track in the cluster, so the
/// bits at the same index of every track become accessible together. The RTM-AP
/// accelerator uses one DBC per CAM column group so that the bit-serial execution of
/// all SIMD rows advances in a single shift.
///
/// # Example
///
/// ```
/// use rtm::DomainBlockCluster;
///
/// # fn main() -> Result<(), rtm::RtmError> {
/// let mut dbc = DomainBlockCluster::new(4, 16, 1)?;
/// dbc.write_word(3, &[true, false, true, true])?;
/// assert_eq!(dbc.read_word(3)?, vec![true, false, true, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainBlockCluster {
    tracks: Vec<Nanowire>,
    position: usize,
    /// Shifts are shared by the whole cluster, so they are counted here rather than
    /// per track.
    cluster_shifts: u64,
}

impl DomainBlockCluster {
    /// Creates a cluster of `tracks` nanowires, each with `domains` bits and `ports`
    /// access ports.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::EmptyGeometry`] if any dimension is zero.
    pub fn new(tracks: usize, domains: usize, ports: usize) -> Result<Self> {
        if tracks == 0 {
            return Err(RtmError::EmptyGeometry {
                what: "number of tracks",
            });
        }
        let tracks = (0..tracks)
            .map(|_| Nanowire::new(domains, ports))
            .collect::<Result<Vec<_>>>()?;
        Ok(DomainBlockCluster {
            tracks,
            position: 0,
            cluster_shifts: 0,
        })
    }

    /// Builds a cluster from existing nanowires.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::EmptyGeometry`] if `tracks` is empty and
    /// [`RtmError::MismatchedTrackLength`] if the tracks differ in length.
    pub fn from_tracks(tracks: Vec<Nanowire>) -> Result<Self> {
        let first_len = tracks
            .first()
            .map(Nanowire::len)
            .ok_or(RtmError::EmptyGeometry {
                what: "number of tracks",
            })?;
        if let Some(bad) = tracks.iter().find(|t| t.len() != first_len) {
            return Err(RtmError::MismatchedTrackLength {
                expected: first_len,
                found: bad.len(),
            });
        }
        Ok(DomainBlockCluster {
            tracks,
            position: 0,
            cluster_shifts: 0,
        })
    }

    /// Number of tracks in the cluster.
    pub fn tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Number of domains per track.
    pub fn domains(&self) -> usize {
        self.tracks[0].len()
    }

    /// Domain index currently aligned with the ports.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Total number of lockstep shift operations performed by the cluster.
    pub fn cluster_shifts(&self) -> u64 {
        self.cluster_shifts
    }

    /// Aligns domain `index` of every track with the access ports, charging the shift
    /// distance once for the whole cluster.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds.
    pub fn align(&mut self, index: usize) -> Result<()> {
        if index >= self.domains() {
            return Err(RtmError::DomainOutOfRange {
                index,
                len: self.domains(),
            });
        }
        let distance = self.tracks[0].shift_distance(index);
        self.cluster_shifts += distance as u64;
        for track in &mut self.tracks {
            track.align(index)?;
        }
        self.position = index;
        Ok(())
    }

    /// Reads the bit at `index` from every track (one bit per track, i.e. a "word"
    /// across the cluster).
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds.
    pub fn read_word(&mut self, index: usize) -> Result<Vec<bool>> {
        self.align(index)?;
        Ok(self.tracks.iter_mut().map(Nanowire::read_aligned).collect())
    }

    /// Writes one bit per track at domain `index`.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds, or
    /// [`RtmError::MismatchedTrackLength`] if `word` does not have one bit per track.
    pub fn write_word(&mut self, index: usize, word: &[bool]) -> Result<()> {
        if word.len() != self.tracks.len() {
            return Err(RtmError::MismatchedTrackLength {
                expected: self.tracks.len(),
                found: word.len(),
            });
        }
        self.align(index)?;
        for (track, &bit) in self.tracks.iter_mut().zip(word) {
            track.write_aligned(bit);
        }
        Ok(())
    }

    /// Returns a reference to an individual track.
    pub fn track(&self, index: usize) -> Option<&Nanowire> {
        self.tracks.get(index)
    }

    /// Returns a mutable reference to an individual track.
    pub fn track_mut(&mut self, index: usize) -> Option<&mut Nanowire> {
        self.tracks.get_mut(index)
    }

    /// Aggregated access statistics across all tracks, with shift counts replaced by
    /// the cluster-level (lockstep) shift count.
    pub fn stats(&self) -> AccessStats {
        let mut total = AccessStats::new();
        for track in &self.tracks {
            let s = track.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.max_writes_per_domain = total.max_writes_per_domain.max(s.max_writes_per_domain);
        }
        total.shifts = self.cluster_shifts;
        total
    }

    /// Resets all access counters.
    pub fn reset_stats(&mut self) {
        self.cluster_shifts = 0;
        for track in &mut self.tracks {
            track.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_tracks() {
        assert!(matches!(
            DomainBlockCluster::new(0, 8, 1),
            Err(RtmError::EmptyGeometry { .. })
        ));
    }

    #[test]
    fn word_round_trip() {
        let mut dbc = DomainBlockCluster::new(3, 8, 1).expect("geometry");
        dbc.write_word(5, &[true, false, true]).expect("write");
        assert_eq!(dbc.read_word(5).expect("read"), vec![true, false, true]);
    }

    #[test]
    fn wrong_word_width_is_rejected() {
        let mut dbc = DomainBlockCluster::new(3, 8, 1).expect("geometry");
        assert!(dbc.write_word(0, &[true, false]).is_err());
    }

    #[test]
    fn lockstep_shift_is_counted_once_per_cluster() {
        let mut dbc = DomainBlockCluster::new(16, 32, 1).expect("geometry");
        dbc.align(10).expect("align");
        assert_eq!(dbc.cluster_shifts(), 10);
        assert_eq!(dbc.stats().shifts, 10);
    }

    #[test]
    fn from_tracks_checks_lengths() {
        let a = Nanowire::new(8, 1).expect("wire");
        let b = Nanowire::new(9, 1).expect("wire");
        assert!(matches!(
            DomainBlockCluster::from_tracks(vec![a, b]),
            Err(RtmError::MismatchedTrackLength { .. })
        ));
        assert!(DomainBlockCluster::from_tracks(vec![]).is_err());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut dbc = DomainBlockCluster::new(2, 8, 1).expect("geometry");
        dbc.write_word(4, &[true, true]).expect("write");
        dbc.reset_stats();
        assert!(dbc.stats().is_empty());
    }
}
