//! Write-endurance modelling for racetrack memories.
//!
//! RTM endures roughly 10^16 write cycles per location (paper §V-C), the best among
//! the non-volatile technologies considered. This module turns the write activity of
//! an inference workload into the wear-out estimate quoted in the paper
//! (≈31 years when the same column is rewritten about every 100 ns).

use crate::RtmTechnology;
use serde::{Deserialize, Serialize};

/// Summary of the write stress applied to the most-written memory location during a
/// workload, together with the resulting lifetime estimate.
///
/// # Example
///
/// ```
/// use rtm::endurance::EnduranceReport;
/// use rtm::RtmTechnology;
///
/// // Paper scenario: worst case, one write to the same location every ~100 ns.
/// let report = EnduranceReport::from_write_interval(&RtmTechnology::default(), 100.0);
/// assert!(report.lifetime_years > 25.0 && report.lifetime_years < 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceReport {
    /// Average interval between writes to the most-stressed location, in nanoseconds.
    pub write_interval_ns: f64,
    /// Writes per second to the most-stressed location.
    pub writes_per_second: f64,
    /// Endurance limit of the technology (write cycles).
    pub endurance_cycles: f64,
    /// Estimated lifetime in years.
    pub lifetime_years: f64,
}

impl EnduranceReport {
    /// Builds a report from the mean interval (in nanoseconds) between writes to the
    /// hottest location.
    pub fn from_write_interval(tech: &RtmTechnology, write_interval_ns: f64) -> Self {
        let writes_per_second = if write_interval_ns > 0.0 {
            1.0e9 / write_interval_ns
        } else {
            0.0
        };
        EnduranceReport {
            write_interval_ns,
            writes_per_second,
            endurance_cycles: tech.endurance_cycles,
            lifetime_years: tech.lifetime_years(writes_per_second),
        }
    }

    /// Builds a report from an observed workload: `hottest_location_writes` writes to
    /// the most-stressed location over a runtime of `runtime_ns` nanoseconds.
    ///
    /// Returns a report with infinite lifetime when no writes were observed.
    pub fn from_workload(
        tech: &RtmTechnology,
        hottest_location_writes: u64,
        runtime_ns: f64,
    ) -> Self {
        if hottest_location_writes == 0 || runtime_ns <= 0.0 {
            return EnduranceReport {
                write_interval_ns: f64::INFINITY,
                writes_per_second: 0.0,
                endurance_cycles: tech.endurance_cycles,
                lifetime_years: f64::INFINITY,
            };
        }
        let interval = runtime_ns / hottest_location_writes as f64;
        Self::from_write_interval(tech, interval)
    }
}

/// Estimates the write interval of the hottest CAM column under the paper's
/// execution model.
///
/// §V-C argues that each in-place or out-of-place operation writes at most two
/// columns once, and because execution is spread over `columns` columns, a specific
/// column is rewritten only about every `columns / writes_per_op` operations. Given
/// the per-operation latency this yields the mean rewrite interval in nanoseconds.
pub fn column_rewrite_interval_ns(columns: usize, writes_per_op: f64, op_latency_ns: f64) -> f64 {
    if writes_per_op <= 0.0 || columns == 0 {
        return f64::INFINITY;
    }
    let ops_between_rewrites = columns as f64 / writes_per_op;
    ops_between_rewrites * op_latency_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_yields_about_31_years() {
        // 256 columns, 2 column writes per op, op latency ~0.8 ns ⇒ rewrite every ~102 ns.
        let interval = column_rewrite_interval_ns(256, 2.0, 0.8);
        assert!(interval > 90.0 && interval < 120.0, "interval {interval}");
        let report = EnduranceReport::from_write_interval(&RtmTechnology::default(), interval);
        assert!(
            report.lifetime_years > 25.0 && report.lifetime_years < 40.0,
            "lifetime {}",
            report.lifetime_years
        );
    }

    #[test]
    fn zero_writes_means_infinite_lifetime() {
        let report = EnduranceReport::from_workload(&RtmTechnology::default(), 0, 1.0e9);
        assert!(report.lifetime_years.is_infinite());
        assert_eq!(report.writes_per_second, 0.0);
    }

    #[test]
    fn workload_report_matches_interval_report() {
        let tech = RtmTechnology::default();
        let by_interval = EnduranceReport::from_write_interval(&tech, 200.0);
        let by_workload = EnduranceReport::from_workload(&tech, 5_000_000, 1.0e9);
        assert!((by_interval.lifetime_years - by_workload.lifetime_years).abs() < 1e-6);
    }

    #[test]
    fn degenerate_geometry_is_infinite() {
        assert!(column_rewrite_interval_ns(0, 2.0, 1.0).is_infinite());
        assert!(column_rewrite_interval_ns(256, 0.0, 1.0).is_infinite());
    }
}
