use crate::{AccessStats, Result, RtmError};

/// A single racetrack nanowire (track) storing one bit per magnetic domain.
///
/// The wire has a fixed number of domains and one or more access ports. Reading or
/// writing a particular domain first requires shifting the domain walls so the
/// target domain is aligned with the nearest access port; the number of shift steps
/// is recorded in the wire's [`AccessStats`].
///
/// In the RTM-AP accelerator each CAM *cell* is one nanowire: the bits of a multi-bit
/// operand (and, contiguously, the bits of further input channels) are stored along
/// the track, and bit-serial processing walks the track one domain at a time, which
/// is exactly the sequential access pattern RTM is fastest at.
///
/// # Example
///
/// ```
/// use rtm::Nanowire;
///
/// # fn main() -> Result<(), rtm::RtmError> {
/// let mut wire = Nanowire::new(8, 1)?;
/// wire.write_at(5, true)?;
/// assert!(wire.read_at(5)?);
/// assert!(!wire.read_at(0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nanowire {
    domains: Vec<bool>,
    /// Writes received by each domain (endurance tracking).
    write_counts: Vec<u64>,
    /// Domain index currently aligned with port 0. Ports are assumed equidistant.
    position: usize,
    ports: usize,
    stats: AccessStats,
}

impl Nanowire {
    /// Creates a nanowire with `domains` zero-initialised bits and `ports` access ports.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::EmptyGeometry`] if `domains` or `ports` is zero.
    pub fn new(domains: usize, ports: usize) -> Result<Self> {
        if domains == 0 {
            return Err(RtmError::EmptyGeometry {
                what: "number of domains",
            });
        }
        if ports == 0 {
            return Err(RtmError::EmptyGeometry {
                what: "number of access ports",
            });
        }
        Ok(Nanowire {
            domains: vec![false; domains],
            write_counts: vec![0; domains],
            position: 0,
            ports,
            stats: AccessStats::new(),
        })
    }

    /// Creates a nanowire whose domains are initialised from `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::EmptyGeometry`] if `bits` is empty or `ports` is zero.
    pub fn from_bits(bits: &[bool], ports: usize) -> Result<Self> {
        let mut wire = Self::new(bits.len().max(1), ports)?;
        if bits.is_empty() {
            return Err(RtmError::EmptyGeometry {
                what: "number of domains",
            });
        }
        wire.domains.copy_from_slice(bits);
        Ok(wire)
    }

    /// Number of domains (storable bits) in the track.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Returns `true` if the wire has no domains. Construction prevents this, so the
    /// method exists only to satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Number of access ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Domain index currently aligned with access port 0.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Access counters collected so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the access counters without touching the stored data.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::new();
    }

    /// Shift distance (number of one-domain moves) required to align `index` with the
    /// nearest access port, given the current position.
    ///
    /// With `p` equidistant ports on a track of `n` domains, a domain is at most
    /// `n / (2p)` shifts away; this model charges the minimal absolute distance.
    pub fn shift_distance(&self, index: usize) -> usize {
        let n = self.domains.len();
        let segment = n.div_ceil(self.ports);
        let raw = index.abs_diff(self.position);
        // Another port may be closer: the best case is the distance modulo the
        // port-to-port spacing, folded into the shorter direction.
        let folded = raw % segment;
        folded.min(segment - folded.min(segment))
    }

    /// Shifts the domain walls so that domain `index` is aligned with a port and
    /// records the shift cost.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds.
    pub fn align(&mut self, index: usize) -> Result<()> {
        if index >= self.domains.len() {
            return Err(RtmError::DomainOutOfRange {
                index,
                len: self.domains.len(),
            });
        }
        let distance = self.shift_distance(index);
        self.stats.shifts += distance as u64;
        self.position = index;
        Ok(())
    }

    /// Reads the domain at `index`, shifting first if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds.
    pub fn read_at(&mut self, index: usize) -> Result<bool> {
        self.align(index)?;
        self.stats.reads += 1;
        Ok(self.domains[index])
    }

    /// Writes `value` to the domain at `index`, shifting first if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if `index` is out of bounds.
    pub fn write_at(&mut self, index: usize, value: bool) -> Result<()> {
        self.align(index)?;
        self.stats.writes += 1;
        self.write_counts[index] += 1;
        self.stats.max_writes_per_domain = self
            .stats
            .max_writes_per_domain
            .max(self.write_counts[index]);
        self.domains[index] = value;
        Ok(())
    }

    /// Reads the domain currently aligned with port 0 without shifting.
    pub fn read_aligned(&mut self) -> bool {
        self.stats.reads += 1;
        self.domains[self.position]
    }

    /// Writes the domain currently aligned with port 0 without shifting.
    pub fn write_aligned(&mut self, value: bool) {
        self.stats.writes += 1;
        self.write_counts[self.position] += 1;
        self.stats.max_writes_per_domain = self
            .stats
            .max_writes_per_domain
            .max(self.write_counts[self.position]);
        self.domains[self.position] = value;
    }

    /// Returns the stored bit pattern without affecting position or statistics.
    ///
    /// This is a simulator convenience (a real device cannot observe all domains at
    /// once); functional checks in tests use it to compare against expected contents.
    pub fn snapshot(&self) -> &[bool] {
        &self.domains
    }

    /// Per-domain write counts (endurance bookkeeping).
    pub fn write_counts(&self) -> &[u64] {
        &self.write_counts
    }

    /// Loads `bits` into the track starting at domain `offset`, counting one write per
    /// domain. Used to stage input feature maps into the CAM.
    ///
    /// # Errors
    ///
    /// Returns [`RtmError::DomainOutOfRange`] if the data does not fit.
    pub fn load(&mut self, offset: usize, bits: &[bool]) -> Result<()> {
        let end = offset + bits.len();
        if end > self.domains.len() {
            return Err(RtmError::DomainOutOfRange {
                index: end.saturating_sub(1),
                len: self.domains.len(),
            });
        }
        for (i, &bit) in bits.iter().enumerate() {
            self.write_at(offset + i, bit)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_empty_geometry() {
        assert!(matches!(
            Nanowire::new(0, 1),
            Err(RtmError::EmptyGeometry { .. })
        ));
        assert!(matches!(
            Nanowire::new(8, 0),
            Err(RtmError::EmptyGeometry { .. })
        ));
    }

    #[test]
    fn read_write_round_trip() {
        let mut wire = Nanowire::new(16, 1).expect("geometry");
        wire.write_at(7, true).expect("write");
        wire.write_at(8, false).expect("write");
        assert!(wire.read_at(7).expect("read"));
        assert!(!wire.read_at(8).expect("read"));
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let mut wire = Nanowire::new(4, 1).expect("geometry");
        assert!(matches!(
            wire.read_at(4),
            Err(RtmError::DomainOutOfRange { .. })
        ));
        assert!(matches!(
            wire.write_at(100, true),
            Err(RtmError::DomainOutOfRange { .. })
        ));
    }

    #[test]
    fn sequential_access_costs_one_shift_per_step() {
        let mut wire = Nanowire::new(32, 1).expect("geometry");
        for i in 0..32 {
            wire.read_at(i).expect("read");
        }
        // Starting aligned at 0, walking 0..31 costs 31 shifts in total.
        assert_eq!(wire.stats().shifts, 31);
        assert_eq!(wire.stats().reads, 32);
    }

    #[test]
    fn random_access_costs_more_shifts_than_sequential() {
        let mut seq = Nanowire::new(64, 1).expect("geometry");
        for i in 0..64 {
            seq.read_at(i).expect("read");
        }
        let mut random = Nanowire::new(64, 1).expect("geometry");
        for i in 0..32 {
            random.read_at(i).expect("read");
            random.read_at(63 - i).expect("read");
        }
        assert!(random.stats().shifts > seq.stats().shifts);
    }

    #[test]
    fn multiple_ports_reduce_shift_distance() {
        let single = Nanowire::new(64, 1).expect("geometry");
        let quad = Nanowire::new(64, 4).expect("geometry");
        assert!(quad.shift_distance(40) <= single.shift_distance(40));
    }

    #[test]
    fn write_counts_track_endurance() {
        let mut wire = Nanowire::new(8, 1).expect("geometry");
        for _ in 0..5 {
            wire.write_at(3, true).expect("write");
        }
        wire.write_at(2, false).expect("write");
        assert_eq!(wire.write_counts()[3], 5);
        assert_eq!(wire.write_counts()[2], 1);
        assert_eq!(wire.stats().max_writes_per_domain, 5);
    }

    #[test]
    fn load_writes_contiguously() {
        let mut wire = Nanowire::new(8, 1).expect("geometry");
        wire.load(2, &[true, false, true]).expect("load");
        assert_eq!(wire.snapshot()[2..5], [true, false, true]);
        assert!(wire.load(6, &[true; 4]).is_err());
    }

    #[test]
    fn from_bits_preserves_content() {
        let bits = [true, true, false, true];
        let wire = Nanowire::from_bits(&bits, 1).expect("from_bits");
        assert_eq!(wire.snapshot(), &bits);
    }

    proptest! {
        #[test]
        fn prop_read_returns_last_written(len in 1usize..100, writes in proptest::collection::vec((0usize..100, any::<bool>()), 1..50)) {
            let mut wire = Nanowire::new(len, 1).expect("geometry");
            let mut model = vec![false; len];
            for (idx, value) in writes {
                let idx = idx % len;
                wire.write_at(idx, value).expect("write");
                model[idx] = value;
            }
            for (i, &expected) in model.iter().enumerate() {
                prop_assert_eq!(wire.read_at(i).expect("read"), expected);
            }
        }

        #[test]
        fn prop_shift_distance_bounded_by_segment(len in 1usize..128, ports in 1usize..4, idx in 0usize..128) {
            let wire = Nanowire::new(len, ports).expect("geometry");
            let idx = idx % len;
            let segment = len.div_ceil(ports);
            prop_assert!(wire.shift_distance(idx) <= segment);
        }
    }
}
