use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Counters for the accesses performed on a nanowire or cluster.
///
/// The accelerator-level cost model converts these counts into energy and latency
/// using an [`RtmTechnology`](crate::RtmTechnology).
///
/// # Example
///
/// ```
/// use rtm::AccessStats;
///
/// let a = AccessStats { shifts: 3, reads: 1, writes: 1, max_writes_per_domain: 1 };
/// let b = AccessStats { shifts: 2, reads: 0, writes: 4, max_writes_per_domain: 2 };
/// let total = a + b;
/// assert_eq!(total.shifts, 5);
/// assert_eq!(total.writes, 5);
/// assert_eq!(total.max_writes_per_domain, 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of one-position domain-wall shifts.
    pub shifts: u64,
    /// Number of domain reads through an access port.
    pub reads: u64,
    /// Number of domain writes through an access port.
    pub writes: u64,
    /// Largest number of writes that any single domain has received (endurance proxy).
    pub max_writes_per_domain: u64,
}

impl AccessStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of port operations (reads + writes), excluding shifts.
    pub fn port_operations(&self) -> u64 {
        self.reads + self.writes
    }

    /// Returns `true` when no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.shifts == 0 && self.reads == 0 && self.writes == 0
    }
}

impl Add for AccessStats {
    type Output = AccessStats;

    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            shifts: self.shifts + rhs.shifts,
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            max_writes_per_domain: self.max_writes_per_domain.max(rhs.max_writes_per_domain),
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let stats = AccessStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.port_operations(), 0);
    }

    #[test]
    fn addition_accumulates_and_maxes() {
        let a = AccessStats {
            shifts: 1,
            reads: 2,
            writes: 3,
            max_writes_per_domain: 3,
        };
        let b = AccessStats {
            shifts: 10,
            reads: 20,
            writes: 30,
            max_writes_per_domain: 1,
        };
        let mut c = a;
        c += b;
        assert_eq!(c.shifts, 11);
        assert_eq!(c.reads, 22);
        assert_eq!(c.writes, 33);
        assert_eq!(c.max_writes_per_domain, 3);
        assert_eq!(c.port_operations(), 55);
    }
}
