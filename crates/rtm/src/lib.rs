//! Racetrack-memory (RTM) device model.
//!
//! Racetrack memory stores data as magnetic domains along a nanowire (a *track*).
//! A track holds up to ~100 bits, and a small number of *access ports* can read or
//! write the domain that is currently aligned with them. Accessing an arbitrary
//! domain therefore requires *shifting* the domain walls until the desired domain
//! sits under a port, which costs time, energy, and wear.
//!
//! This crate provides the device-level substrate used by the RTM-based
//! content-addressable memories ([`cam`]) and associative processors ([`ap`]) of the
//! CAM-only DNN inference stack:
//!
//! * [`Nanowire`] — a single track with shift/read/write operations and endurance
//!   counters,
//! * [`DomainBlockCluster`] — a group of tracks shifted in lockstep (DBC),
//! * [`RtmTechnology`] — the timing/energy figures of merit,
//! * [`AccessStats`] / [`endurance`] — accounting used by the accelerator-level
//!   reports (shift counts, write endurance, estimated lifetime).
//!
//! # Example
//!
//! ```
//! use rtm::{Nanowire, RtmTechnology};
//!
//! # fn main() -> Result<(), rtm::RtmError> {
//! let tech = RtmTechnology::default();
//! let mut wire = Nanowire::new(64, 1)?;
//! wire.write_at(3, true)?;           // shifts to domain 3, then writes
//! assert!(wire.read_at(3)?);
//! let stats = wire.stats();
//! assert!(stats.shifts > 0);
//! let energy = tech.shift_energy_fj * stats.shifts as f64;
//! assert!(energy > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! [`cam`]: https://docs.rs/cam
//! [`ap`]: https://docs.rs/ap

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dbc;
pub mod endurance;
mod error;
mod nanowire;
mod stats;
mod technology;

pub use dbc::DomainBlockCluster;
pub use error::RtmError;
pub use nanowire::Nanowire;
pub use stats::AccessStats;
pub use technology::RtmTechnology;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RtmError>;
