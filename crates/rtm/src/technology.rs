use serde::{Deserialize, Serialize};

/// Timing and energy figures of merit for a racetrack-memory device.
///
/// The defaults follow the figures used in the paper's evaluation (§V): 64 domains
/// per nanowire (after Bläsing et al., *Magnetic racetrack memory*, JPROC 2020), and
/// shift/read/write costs in the range published for 45 nm domain-wall devices. All
/// values are plain `f64`s so that alternative technology points (e.g. skyrmion
/// devices) can be modelled by constructing a different [`RtmTechnology`].
///
/// # Example
///
/// ```
/// use rtm::RtmTechnology;
///
/// let tech = RtmTechnology { domains_per_track: 32, ..RtmTechnology::default() };
/// assert_eq!(tech.domains_per_track, 32);
/// assert!(tech.shift_latency_ns > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RtmTechnology {
    /// Number of storable bits (domains) per nanowire.
    pub domains_per_track: usize,
    /// Number of access ports per nanowire.
    pub access_ports: usize,
    /// Latency of shifting the domain walls by one position, in nanoseconds.
    pub shift_latency_ns: f64,
    /// Energy of shifting the domain walls by one position, in femtojoules.
    pub shift_energy_fj: f64,
    /// Latency of reading the domain aligned with a port, in nanoseconds.
    pub read_latency_ns: f64,
    /// Energy of reading the domain aligned with a port, in femtojoules.
    pub read_energy_fj: f64,
    /// Latency of writing the domain aligned with a port, in nanoseconds.
    pub write_latency_ns: f64,
    /// Energy of writing the domain aligned with a port, in femtojoules.
    pub write_energy_fj: f64,
    /// Number of write cycles the device endures before wear-out (RTM: ~1e16).
    pub endurance_cycles: f64,
}

impl Default for RtmTechnology {
    fn default() -> Self {
        RtmTechnology {
            domains_per_track: 64,
            access_ports: 1,
            shift_latency_ns: 0.5,
            shift_energy_fj: 0.2,
            read_latency_ns: 0.2,
            read_energy_fj: 0.1,
            write_latency_ns: 0.3,
            write_energy_fj: 0.3,
            endurance_cycles: 1.0e16,
        }
    }
}

impl RtmTechnology {
    /// Creates the default technology point (64-domain tracks, single port).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in femtojoules for a given access trace.
    ///
    /// `shifts`, `reads`, and `writes` are event counts as collected by
    /// [`AccessStats`](crate::AccessStats).
    pub fn energy_fj(&self, shifts: u64, reads: u64, writes: u64) -> f64 {
        shifts as f64 * self.shift_energy_fj
            + reads as f64 * self.read_energy_fj
            + writes as f64 * self.write_energy_fj
    }

    /// Total latency in nanoseconds for a given serial access trace.
    pub fn latency_ns(&self, shifts: u64, reads: u64, writes: u64) -> f64 {
        shifts as f64 * self.shift_latency_ns
            + reads as f64 * self.read_latency_ns
            + writes as f64 * self.write_latency_ns
    }

    /// Estimated device lifetime in years assuming `writes_per_second` uniform writes
    /// to the most-stressed location.
    ///
    /// Returns `f64::INFINITY` when `writes_per_second` is zero.
    pub fn lifetime_years(&self, writes_per_second: f64) -> f64 {
        if writes_per_second <= 0.0 {
            return f64::INFINITY;
        }
        const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        self.endurance_cycles / writes_per_second / SECONDS_PER_YEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_figures() {
        let tech = RtmTechnology::default();
        assert_eq!(tech.domains_per_track, 64);
        assert_eq!(tech.access_ports, 1);
        assert!((tech.endurance_cycles - 1.0e16).abs() < 1.0);
    }

    #[test]
    fn energy_and_latency_are_linear_in_counts() {
        let tech = RtmTechnology::default();
        let one = tech.energy_fj(1, 1, 1);
        let ten = tech.energy_fj(10, 10, 10);
        assert!((ten - 10.0 * one).abs() < 1e-9);
        let l1 = tech.latency_ns(1, 0, 0);
        assert!((l1 - tech.shift_latency_ns).abs() < 1e-12);
    }

    #[test]
    fn lifetime_matches_paper_order_of_magnitude() {
        // Paper §V-C: rewriting the same location every ~100 ns gives ~31 years.
        let tech = RtmTechnology::default();
        let writes_per_second = 1.0e9 / 100.0; // one write per 100 ns
        let years = tech.lifetime_years(writes_per_second);
        assert!(years > 25.0 && years < 40.0, "got {years}");
    }

    #[test]
    fn lifetime_with_no_writes_is_infinite() {
        let tech = RtmTechnology::default();
        assert!(tech.lifetime_years(0.0).is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let tech = RtmTechnology::default();
        let json = serde_json::to_string(&tech).expect("serialize");
        let back: RtmTechnology = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(tech, back);
    }
}
