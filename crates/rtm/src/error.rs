use thiserror::Error;

/// Errors produced by the racetrack-memory device model.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
#[non_exhaustive]
pub enum RtmError {
    /// The requested domain index is outside of the nanowire.
    #[error("domain index {index} out of range for track with {len} domains")]
    DomainOutOfRange {
        /// Requested domain index.
        index: usize,
        /// Number of domains in the track.
        len: usize,
    },
    /// A nanowire or cluster was constructed with zero domains or zero tracks.
    #[error("{what} must be non-zero")]
    EmptyGeometry {
        /// Human-readable description of which dimension was empty.
        what: &'static str,
    },
    /// The requested access port does not exist.
    #[error("access port {index} out of range ({ports} ports)")]
    PortOutOfRange {
        /// Requested port index.
        index: usize,
        /// Number of access ports.
        ports: usize,
    },
    /// Tracks of different lengths were grouped into one cluster.
    #[error(
        "all tracks in a cluster must have the same length (expected {expected}, found {found})"
    )]
    MismatchedTrackLength {
        /// Length of the first track.
        expected: usize,
        /// Length of the offending track.
        found: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = RtmError::DomainOutOfRange { index: 70, len: 64 };
        let msg = err.to_string();
        assert!(msg.contains("70"));
        assert!(msg.contains("64"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RtmError>();
    }
}
